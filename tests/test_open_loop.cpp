// Open-loop traffic engine tests (workload/open_loop.h).
//
// Three contracts, each of which the closed-loop harness cannot express:
//   1. Measurement — latency is recorded from *intended* arrival time, so
//      saturation shows up as queueing delay instead of silently shrinking
//      the offered load (the coordinated-omission fix, asserted both for the
//      open-loop engine and for the rate-paced closed-loop Client).
//   2. Accounting — overload is explicit: every intended arrival ends the
//      run as completed, shed, still-queued, or still-in-flight, and the
//      ledger conserves exactly.
//   3. Determinism and cost — byte-identical results for any shard-thread
//      count and rerun, and a steady state that never touches the heap.
#include "workload/open_loop.h"

#include <gtest/gtest.h>

#include <memory>

#include "alloc_guard.h"
#include "core/static_policy.h"
#include "workload/runner.h"

namespace harmony::workload {
namespace {

RunConfig open_run(double rate_per_s, std::uint64_t seed = 11) {
  RunConfig cfg;
  cfg.cluster.node_count = 8;
  cfg.cluster.dc_count = 2;
  cfg.cluster.rf = 3;
  cfg.cluster.latency = net::TieredLatencyModel::ec2_two_az();
  cfg.workload = WorkloadSpec::ycsb_a();
  cfg.workload.record_count = 500;
  cfg.workload.open_loop.enabled = true;
  cfg.workload.open_loop.rate_per_s = rate_per_s;
  cfg.workload.open_loop.duration = 3 * kSecond;
  cfg.workload.open_loop.drain_grace = kSecond;
  cfg.workload.open_loop.user_count = 20'000;
  cfg.policy = core::static_level(cluster::Level::kOne);
  cfg.warmup = 500 * kMillisecond;
  cfg.seed = seed;
  return cfg;
}

/// The conservation identities every run must satisfy exactly: arrivals are
/// never lost, only re-labelled.
void expect_ledger_conserved(const OpenLoopResult& ol) {
  EXPECT_EQ(ol.arrivals, ol.completed + ol.shed_queue_full + ol.queued_at_end +
                             ol.in_flight_at_end);
  EXPECT_EQ(ol.issued, ol.completed + ol.in_flight_at_end);
  EXPECT_GE(ol.completed, ol.failed);
  EXPECT_GE(ol.failed, ol.shed_admission);
  EXPECT_GE(ol.sla_total, ol.sla_ok);
}

TEST(OpenLoop, RunsAndPopulatesResult) {
  const auto r = run_experiment(open_run(1500));
  EXPECT_GT(r.reads, 500u);
  EXPECT_GT(r.writes, 500u);
  EXPECT_GT(r.read_latency.count(), 0u);
  EXPECT_GT(r.write_latency.count(), 0u);
  expect_ledger_conserved(r.open_loop);
  EXPECT_GT(r.open_loop.arrivals, 0u);
  EXPECT_GT(r.open_loop.sla_total, 0u);
  EXPECT_GT(r.open_loop.sla_attainment, 0.0);
  EXPECT_LE(r.open_loop.sla_attainment, 1.0);
  // A Poisson process at constant lambda realises close to its nominal rate.
  EXPECT_NEAR(r.open_loop.offered_rate, 1500.0, 1500.0 * 0.15);
}

TEST(OpenLoop, LedgerConservesUnderOverload) {
  auto cfg = open_run(40'000);
  // Tight explicit bounds so the run exercises queueing AND shedding.
  cfg.workload.open_loop.max_in_flight_per_dc = 64;
  cfg.workload.open_loop.queue_capacity_per_dc = 128;
  const auto r = run_experiment(cfg);
  const OpenLoopResult& ol = r.open_loop;
  expect_ledger_conserved(ol);
  EXPECT_GT(ol.shed_queue_full, 0u) << "overload never hit the bounded FIFO";
  EXPECT_GT(ol.queueing_delay.count(), 0u);
  EXPECT_GT(ol.queueing_delay.max(), 0);
  // Offered load is independent of completions: arrivals track the nominal
  // rate even though the cluster cannot absorb them.
  EXPECT_NEAR(ol.offered_rate, 40'000.0, 40'000.0 * 0.15);
  EXPECT_LT(ol.sla_attainment, 0.9);
}

TEST(OpenLoop, DeterministicAcrossReruns) {
  const auto a = run_experiment(open_run(5000, 17));
  const auto b = run_experiment(open_run(5000, 17));
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.open_loop.arrivals, b.open_loop.arrivals);
  EXPECT_EQ(a.open_loop.completed, b.open_loop.completed);
  EXPECT_EQ(a.open_loop.shed_queue_full, b.open_loop.shed_queue_full);
  EXPECT_EQ(a.read_latency.percentile(99), b.read_latency.percentile(99));
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(OpenLoop, SeedChangesOutcome) {
  const auto a = run_experiment(open_run(5000, 17));
  const auto b = run_experiment(open_run(5000, 18));
  EXPECT_NE(a.open_loop.arrivals, b.open_loop.arrivals);
}

// ---- sharded execution ------------------------------------------------------

RunConfig sharded_open_run(unsigned threads, double rate = 6000) {
  RunConfig cfg = open_run(rate, 29);
  cfg.cluster.node_count = 9;
  cfg.cluster.dc_count = 3;
  cfg.cluster.latency.cross_dc.floor = kMillisecond;
  cfg.num_shard_threads = threads;
  return cfg;
}

void expect_same_open_run(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.net.total_bytes(), b.net.total_bytes());
  EXPECT_EQ(a.read_latency.count(), b.read_latency.count());
  EXPECT_EQ(a.read_latency.percentile(99), b.read_latency.percentile(99));
  EXPECT_EQ(a.write_latency.percentile(99), b.write_latency.percentile(99));
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.open_loop.arrivals, b.open_loop.arrivals);
  EXPECT_EQ(a.open_loop.issued, b.open_loop.issued);
  EXPECT_EQ(a.open_loop.completed, b.open_loop.completed);
  EXPECT_EQ(a.open_loop.failed, b.open_loop.failed);
  EXPECT_EQ(a.open_loop.shed_queue_full, b.open_loop.shed_queue_full);
  EXPECT_EQ(a.open_loop.queued_at_end, b.open_loop.queued_at_end);
  EXPECT_EQ(a.open_loop.in_flight_at_end, b.open_loop.in_flight_at_end);
  EXPECT_EQ(a.open_loop.sla_ok, b.open_loop.sla_ok);
  EXPECT_EQ(a.open_loop.sla_total, b.open_loop.sla_total);
  EXPECT_EQ(a.open_loop.queueing_delay.count(),
            b.open_loop.queueing_delay.count());
  EXPECT_EQ(a.open_loop.queueing_delay.percentile(99),
            b.open_loop.queueing_delay.percentile(99));
}

TEST(OpenLoop, ShardedRunIsThreadCountInvariant) {
  const auto serial = run_experiment(sharded_open_run(1));
  const auto two = run_experiment(sharded_open_run(2));
  const auto four = run_experiment(sharded_open_run(4));
  EXPECT_GT(serial.reads, 1000u);
  expect_ledger_conserved(serial.open_loop);
  expect_same_open_run(serial, two);
  expect_same_open_run(serial, four);
}

TEST(OpenLoop, ShardedOverloadIsThreadCountInvariant) {
  auto make = [](unsigned threads) {
    auto cfg = sharded_open_run(threads, 50'000);
    cfg.workload.open_loop.max_in_flight_per_dc = 64;
    cfg.workload.open_loop.queue_capacity_per_dc = 128;
    return cfg;
  };
  const auto serial = run_experiment(make(1));
  const auto four = run_experiment(make(4));
  EXPECT_GT(serial.open_loop.shed_queue_full, 0u);
  expect_ledger_conserved(serial.open_loop);
  expect_same_open_run(serial, four);
}

// ---- arrival processes and rate curves -------------------------------------

TEST(OpenLoop, EveryProcessAndCurveRuns) {
  for (const auto process :
       {ArrivalProcess::kPoisson, ArrivalProcess::kSelfSimilar}) {
    for (const auto curve : {RateCurve::kConstant, RateCurve::kDiurnal,
                             RateCurve::kFlashCrowd}) {
      auto cfg = open_run(2000);
      cfg.workload.open_loop.process = process;
      cfg.workload.open_loop.curve = curve;
      cfg.workload.open_loop.flash_at = 1500 * kMillisecond;
      cfg.workload.open_loop.flash_ramp = 300 * kMillisecond;
      cfg.workload.open_loop.flash_hold = 700 * kMillisecond;
      cfg.workload.open_loop.diurnal_period = 2 * kSecond;
      const auto r = run_experiment(cfg);
      SCOPED_TRACE(to_string(process) + "/" + to_string(curve));
      EXPECT_GT(r.open_loop.arrivals, 0u);
      EXPECT_GT(r.open_loop.completed, 0u);
      expect_ledger_conserved(r.open_loop);
    }
  }
}

TEST(OpenLoop, FlashCrowdRaisesOfferedLoad) {
  auto base = open_run(1000, 23);
  auto flash = open_run(1000, 23);
  flash.workload.open_loop.curve = RateCurve::kFlashCrowd;
  flash.workload.open_loop.flash_at = 1500 * kMillisecond;
  flash.workload.open_loop.flash_ramp = 300 * kMillisecond;
  flash.workload.open_loop.flash_hold = kSecond;
  flash.workload.open_loop.flash_multiplier = 6.0;
  const auto a = run_experiment(base);
  const auto b = run_experiment(flash);
  // The flash window injects ~(mult-1)*rate*hold extra arrivals on top of
  // the base process.
  EXPECT_GT(static_cast<double>(b.open_loop.arrivals),
            1.4 * static_cast<double>(a.open_loop.arrivals));
}

TEST(OpenLoop, SelfSimilarGapsAreBurstier) {
  auto poisson = open_run(4000, 31);
  auto pareto = open_run(4000, 31);
  pareto.workload.open_loop.process = ArrivalProcess::kSelfSimilar;
  pareto.workload.open_loop.pareto_alpha = 1.2;
  // Identical bounded client: a burstier arrival process pushes more
  // arrivals into the same FIFO at once, so its queueing tail dominates.
  poisson.workload.open_loop.max_in_flight_per_dc = 16;
  poisson.workload.open_loop.queue_capacity_per_dc = 4096;
  pareto.workload.open_loop.max_in_flight_per_dc = 16;
  pareto.workload.open_loop.queue_capacity_per_dc = 4096;
  const auto p = run_experiment(poisson);
  const auto s = run_experiment(pareto);
  expect_ledger_conserved(s.open_loop);
  EXPECT_GT(s.open_loop.queueing_delay.percentile(99),
            p.open_loop.queueing_delay.percentile(99));
}

// ---- coordinated omission ---------------------------------------------------

TEST(OpenLoop, P99DivergesFromClosedLoopAtSaturation) {
  // Closed loop first: its throughput IS the cluster's absorbable rate, and
  // its latency stays near service time no matter how overloaded the clients
  // "wish" to be — that is the coordinated-omission blind spot.
  RunConfig closed;
  closed.cluster.node_count = 8;
  closed.cluster.dc_count = 2;
  closed.cluster.rf = 3;
  closed.cluster.latency = net::TieredLatencyModel::ec2_two_az();
  closed.workload = WorkloadSpec::ycsb_a();
  closed.workload.op_count = 8000;
  closed.workload.record_count = 500;
  closed.workload.clients_per_dc = 8;
  closed.policy = core::static_level(cluster::Level::kOne);
  closed.warmup = 500 * kMillisecond;
  closed.seed = 11;
  const auto c = run_experiment(closed);
  ASSERT_GT(c.throughput, 0.0);

  // Same cluster, open loop offering 2.5x what the closed loop delivered:
  // the intended-arrival clock exposes the queueing the closed loop hid.
  const auto o = run_experiment(open_run(2.5 * c.throughput));
  expect_ledger_conserved(o.open_loop);
  EXPECT_GT(o.read_latency.percentile(99), 5 * c.read_latency.percentile(99))
      << "open-loop p99 " << o.read_latency.summary() << " vs closed "
      << c.read_latency.summary();
}

TEST(CoordinatedOmission, PacedClientMeasuresFromIntendedArrival) {
  // Regression for the rate-capped closed-loop Client: with a saturating
  // per-client target rate the intended arrival grid runs far ahead of the
  // serialized completion loop. Before the fix latency was measured from the
  // post-backpressure issue time, so this run reported ~service-time p99s
  // (a few ms) and this test fails; measured from the intended arrival the
  // backlog is visible as seconds of latency.
  RunConfig cfg;
  cfg.cluster.node_count = 8;
  cfg.cluster.dc_count = 2;
  cfg.cluster.rf = 3;
  cfg.cluster.latency = net::TieredLatencyModel::ec2_two_az();
  cfg.workload = WorkloadSpec::ycsb_a();
  cfg.workload.op_count = 4000;
  cfg.workload.record_count = 500;
  cfg.workload.clients_per_dc = 2;
  cfg.workload.target_rate_per_client = 4000;  // far beyond one lane's pace
  cfg.policy = core::static_level(cluster::Level::kOne);
  cfg.warmup = 200 * kMillisecond;
  cfg.seed = 11;
  const auto paced = run_experiment(cfg);

  auto un = cfg;
  un.workload.target_rate_per_client = 0.0;
  const auto unthrottled = run_experiment(un);

  EXPECT_GT(paced.read_latency.percentile(99), 100 * kMillisecond)
      << paced.read_latency.summary();
  EXPECT_GT(paced.read_latency.percentile(99),
            20 * unthrottled.read_latency.percentile(99));
}

TEST(CoordinatedOmission, NonSaturatingPaceStaysNearServiceTime) {
  // The fix must not inflate latencies when the client keeps up: at a pace
  // well below one lane's capacity the intended and actual issue times
  // coincide and p99 stays within the service-time regime.
  RunConfig cfg;
  cfg.cluster.node_count = 8;
  cfg.cluster.dc_count = 2;
  cfg.cluster.rf = 3;
  cfg.cluster.latency = net::TieredLatencyModel::ec2_two_az();
  cfg.workload = WorkloadSpec::ycsb_a();
  cfg.workload.op_count = 2000;
  cfg.workload.record_count = 500;
  cfg.workload.clients_per_dc = 8;
  cfg.workload.target_rate_per_client = 20.0;
  cfg.policy = core::static_level(cluster::Level::kOne);
  cfg.warmup = 200 * kMillisecond;
  cfg.seed = 11;
  const auto r = run_experiment(cfg);
  EXPECT_LT(r.read_latency.percentile(99), 100 * kMillisecond)
      << r.read_latency.summary();
}

// ---- allocation discipline --------------------------------------------------

/// Minimal ClientEnv: plain counters, a real (unattached) monitor, a static
/// policy — exactly what the engine touches per operation, nothing that
/// would allocate on the runner's behalf.
class OpenLoopAllocEnv final : public ClientEnv {
 public:
  OpenLoopAllocEnv()
      : cluster_(sim_, cluster_cfg()), monitor_(monitor::MonitorConfig{}) {
    policy::PolicyInit init;
    init.rf = 3;
    init.local_rf = cluster_.config().local_rf(0);
    init.rng = sim_.fork_rng(0x90110C);
    policy_ = core::static_level(cluster::Level::kOne)(init);
    spec_ = WorkloadSpec::ycsb_a();
    spec_.record_count = 400;
    spec_.open_loop.enabled = true;
    // Overdriven on purpose: a tiny in-flight window and FIFO keep the
    // issue/queue/shed overload machinery all active in steady state.
    spec_.open_loop.rate_per_s = 20'000;
    spec_.open_loop.duration = 4 * kSecond;
    spec_.open_loop.drain_grace = kSecond;
    spec_.open_loop.user_count = 5000;
    spec_.open_loop.max_in_flight_per_dc = 8;
    spec_.open_loop.queue_capacity_per_dc = 32;
    cluster_.preload_range(spec_.record_count, spec_.value_size);
  }

  const WorkloadSpec& spec() const { return spec_; }
  sim::Simulation& sim() { return sim_; }

  bool next_op(Op&) override { return false; }
  const policy::ConsistencyPolicy& policy() const override { return *policy_; }
  cluster::Cluster& cluster() override { return cluster_; }
  monitor::Monitor& monitor() override { return monitor_; }
  sim::Simulation& simulation() override { return sim_; }
  void on_read_complete(const cluster::ReadResult&, SimDuration,
                        int) override {
    ++reads;
  }
  void on_write_complete(const cluster::WriteResult&, SimDuration) override {
    ++writes;
  }
  void on_client_finished() override { ++finished; }

  std::uint64_t reads = 0, writes = 0, finished = 0;

 private:
  static cluster::ClusterConfig cluster_cfg() {
    cluster::ClusterConfig c;
    c.node_count = 8;
    c.dc_count = 2;
    c.rf = 3;
    c.latency = net::TieredLatencyModel::ec2_two_az();
    return c;
  }

  sim::Simulation sim_{7};
  cluster::Cluster cluster_;
  monitor::Monitor monitor_;
  std::unique_ptr<policy::ConsistencyPolicy> policy_;
  WorkloadSpec spec_;
};

TEST(OpenLoop, SteadyStateIsAllocationFree) {
  OpenLoopAllocEnv env;
  auto keys = env.spec().request_dist.build(env.spec().record_count);
  const ScrambledZipfianKeys users(env.spec().open_loop.user_count,
                                   env.spec().open_loop.user_zipf_theta);
  OpenLoopSource src(env, /*dc=*/0, env.spec(),
                     env.spec().open_loop.rate_per_s, /*insert_lane=*/0,
                     /*insert_stride=*/1, env.sim().fork_rng(9),
                     std::move(keys), users);
  src.start();
  src.set_measuring(true);

  // Warm-up: event slabs, slot pools, monitor buckets, store tables all
  // reach their high-water marks under the same overloaded regime the
  // measured window runs at.
  env.sim().run_until(kSecond);
  ASSERT_GT(env.reads + env.writes, 1000u) << "warm-up ran no traffic";

  const harmony::testing::AllocGuard guard;
  env.sim().run_until(3 * kSecond);
  EXPECT_EQ(guard.allocations(), 0u)
      << "open-loop steady state (arrive/queue/shed/issue/complete) must not "
         "touch the heap";

  // Drain and check the ledger end-to-end.
  env.sim().run_until(env.spec().open_loop.duration +
                      env.spec().open_loop.drain_grace);
  OpenLoopResult ol;
  src.collect(ol);
  expect_ledger_conserved(ol);
  EXPECT_GT(ol.completed, 0u);
  EXPECT_GT(ol.shed_queue_full, 0u);
  EXPECT_EQ(env.finished, 1u);
}

}  // namespace
}  // namespace harmony::workload
