#include "core/harmony.h"

#include <gtest/gtest.h>

#include "core/static_policy.h"
#include "workload/runner.h"

namespace harmony::core {
namespace {

monitor::SystemState state_with(double write_rate,
                                std::vector<double> delays) {
  monitor::SystemState s;
  s.now = 10 * kSecond;
  s.read_rate = 1000;
  s.write_rate = write_rate;
  s.rf = static_cast<int>(delays.size());
  s.key_collision = 1.0;  // unit tests model a single contended key
  s.prop_delays_us = std::move(delays);
  return s;
}

TEST(HarmonyController, StartsAtOne) {
  HarmonyController h(HarmonyOptions{}, 5);
  EXPECT_EQ(h.current_replicas(), 1);
  EXPECT_EQ(h.read_requirement().count, 1);
  EXPECT_EQ(h.write_requirement().count, 1);
}

TEST(HarmonyController, StaysAtOneWithoutObservations) {
  HarmonyController h(HarmonyOptions{}, 5);
  monitor::SystemState empty;
  empty.write_rate = 10000;
  h.tick(empty);
  EXPECT_EQ(h.current_replicas(), 1);
}

TEST(HarmonyController, EscalatesUnderHotWrites) {
  HarmonyOptions opt;
  opt.tolerance = 0.05;
  HarmonyController h(opt, 5);
  h.tick(state_with(3000, {300, 700, 1100, 9000, 11000}));
  EXPECT_GT(h.current_replicas(), 1);
  EXPECT_GT(h.estimate_at_one(), 0.05);
  EXPECT_LE(h.estimate_at_current(), 0.05);
  EXPECT_EQ(h.switches(), 1u);
}

TEST(HarmonyController, RelaxesWhenWritesStop) {
  HarmonyOptions opt;
  opt.tolerance = 0.05;
  HarmonyController h(opt, 5);
  h.tick(state_with(3000, {300, 700, 1100, 9000, 11000}));
  const int high = h.current_replicas();
  ASSERT_GT(high, 1);
  auto calm = state_with(0.5, {300, 700, 1100, 9000, 11000});
  calm.now = 20 * kSecond;
  h.tick(calm);
  EXPECT_EQ(h.current_replicas(), 1);
}

TEST(HarmonyController, ToleranceOrdersLevels) {
  const auto s = state_with(800, {300, 700, 1100, 9000, 11000});
  HarmonyOptions tight;
  tight.tolerance = 0.02;
  HarmonyOptions loose;
  loose.tolerance = 0.6;
  HarmonyController a(tight, 5), b(loose, 5);
  a.tick(s);
  b.tick(s);
  EXPECT_GE(a.current_replicas(), b.current_replicas());
}

TEST(HarmonyController, CooldownBlocksFlapping) {
  HarmonyOptions opt;
  opt.tolerance = 0.05;
  opt.cooldown = 10 * kSecond;
  HarmonyController h(opt, 5);
  auto hot = state_with(3000, {300, 700, 1100, 9000, 11000});
  hot.now = kSecond;
  h.tick(hot);
  const int level = h.current_replicas();
  ASSERT_GT(level, 1);
  // Load vanishes immediately, but the cooldown holds the level.
  auto calm = state_with(0.5, {300, 700, 1100, 9000, 11000});
  calm.now = 2 * kSecond;
  h.tick(calm);
  EXPECT_EQ(h.current_replicas(), level);
  calm.now = 30 * kSecond;
  h.tick(calm);
  EXPECT_EQ(h.current_replicas(), 1);
}

TEST(HarmonyController, MaxStepLimitsJumps) {
  HarmonyOptions opt;
  opt.tolerance = 0.001;
  opt.max_step = 1;
  HarmonyController h(opt, 5);
  h.tick(state_with(5000, {300, 700, 1100, 9000, 11000}));
  EXPECT_EQ(h.current_replicas(), 2);  // would jump higher unconstrained
  h.tick(state_with(5000, {300, 700, 1100, 9000, 11000}));
  EXPECT_EQ(h.current_replicas(), 3);
}

TEST(HarmonyController, WriteAcksRespected) {
  HarmonyOptions opt;
  opt.write_acks = 2;
  HarmonyController h(opt, 5);
  EXPECT_EQ(h.write_requirement().count, 2);
}

TEST(HarmonyController, NameCarriesTolerance) {
  HarmonyOptions opt;
  opt.tolerance = 0.4;
  HarmonyController h(opt, 5);
  EXPECT_EQ(h.name(), "harmony(40%)");
}

TEST(HarmonyController, RejectsBadOptions) {
  HarmonyOptions opt;
  opt.tolerance = 1.5;
  EXPECT_THROW(HarmonyController(opt, 5), CheckError);
  HarmonyOptions opt2;
  opt2.write_acks = 9;
  EXPECT_THROW(HarmonyController(opt2, 5), CheckError);
}

// End-to-end: Harmony must keep measured staleness at or below tolerance
// while beating the strong baseline's latency profile.
class HarmonyToleranceInSim : public ::testing::TestWithParam<double> {};

TEST_P(HarmonyToleranceInSim, StaysWithinTolerance) {
  const double tolerance = GetParam();
  workload::RunConfig cfg;
  cfg.cluster.node_count = 10;
  cfg.cluster.dc_count = 2;
  cfg.cluster.rf = 5;
  cfg.cluster.latency = net::TieredLatencyModel::grid5000_two_sites();
  cfg.workload = workload::WorkloadSpec::heavy_read_update();
  cfg.workload.op_count = 35000;
  cfg.workload.record_count = 300;  // hot key space
  cfg.workload.clients_per_dc = 12;
  cfg.policy = harmony_policy(tolerance);
  cfg.policy_tick = 200 * kMillisecond;
  cfg.warmup = 600 * kMillisecond;
  cfg.seed = 31;
  const auto r = workload::run_experiment(cfg);
  ASSERT_GT(r.stale_reads + r.fresh_reads, 3000u);
  // The estimator is approximate; allow modest slack above tolerance.
  EXPECT_LE(r.stale_fraction, tolerance + 0.10) << r.summary();
  EXPECT_GT(r.avg_read_replicas, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, HarmonyToleranceInSim,
                         ::testing::Values(0.05, 0.2, 0.4));

TEST(HarmonyInSim, AdaptsBetweenOneAndAll) {
  workload::RunConfig cfg;
  cfg.cluster.node_count = 10;
  cfg.cluster.dc_count = 2;
  cfg.cluster.rf = 5;
  cfg.cluster.latency = net::TieredLatencyModel::grid5000_two_sites();
  cfg.workload = workload::WorkloadSpec::heavy_read_update();
  cfg.workload.op_count = 35000;
  cfg.workload.record_count = 300;
  cfg.workload.clients_per_dc = 12;
  cfg.policy = harmony_policy(0.2);
  cfg.policy_tick = 200 * kMillisecond;
  cfg.warmup = 600 * kMillisecond;
  cfg.seed = 32;
  const auto r = workload::run_experiment(cfg);
  // Harmony sits strictly between eventual (k=1) and strong (k=5).
  EXPECT_GT(r.avg_read_replicas, 1.0);
  EXPECT_LT(r.avg_read_replicas, 5.0);
}

}  // namespace
}  // namespace harmony::core
