#include <gtest/gtest.h>

#include "cluster/node.h"
#include "cluster/replica_store.h"
#include "common/check.h"

namespace harmony::cluster {
namespace {

TEST(ReplicaStore, LastWriteWins) {
  ReplicaStore s;
  EXPECT_TRUE(s.apply(1, {{100, 1}, 10}));
  EXPECT_TRUE(s.apply(1, {{200, 2}, 20}));
  EXPECT_FALSE(s.apply(1, {{150, 3}, 30}));  // older timestamp dropped
  const auto v = s.read(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version.timestamp, 200);
  EXPECT_EQ(v->size_bytes, 20u);
  EXPECT_EQ(s.writes_superseded(), 1u);
  EXPECT_EQ(s.writes_applied(), 2u);
}

TEST(ReplicaStore, SeqBreaksTies) {
  ReplicaStore s;
  s.apply(1, {{100, 1}, 10});
  EXPECT_TRUE(s.apply(1, {{100, 2}, 11}));
  EXPECT_FALSE(s.apply(1, {{100, 1}, 12}));
}

TEST(ReplicaStore, StoredBytesTracksReplacement) {
  ReplicaStore s;
  s.apply(1, {{1, 1}, 100});
  s.apply(2, {{2, 2}, 50});
  EXPECT_EQ(s.stored_bytes(), 150u);
  s.apply(1, {{3, 3}, 70});  // replaces the 100-byte value
  EXPECT_EQ(s.stored_bytes(), 120u);
  EXPECT_EQ(s.key_count(), 2u);
}

TEST(ReplicaStore, MissingKey) {
  ReplicaStore s;
  EXPECT_FALSE(s.read(42).has_value());
  EXPECT_EQ(s.reads(), 1u);
}

TEST(ReplicaStore, ClearResets) {
  ReplicaStore s;
  s.apply(1, {{1, 1}, 10});
  s.clear();
  EXPECT_EQ(s.key_count(), 0u);
  EXPECT_EQ(s.stored_bytes(), 0u);
}

TEST(Node, ServiceAddsQueueingUnderLoad) {
  NodeParams p;
  p.service_jitter_sigma = 0;        // deterministic
  p.disk_read_probability = 0;
  Node n(0, p, Rng(1));
  // Two back-to-back requests at the same instant: the second queues.
  const auto d1 = n.service(ServiceKind::kWrite, 0);
  const auto d2 = n.service(ServiceKind::kWrite, 0);
  EXPECT_GT(d2, d1);
  EXPECT_NEAR(static_cast<double>(d2), static_cast<double>(2 * d1), 1.0);
}

TEST(Node, IdleNodeHasNoBacklog) {
  NodeParams p;
  Node n(0, p, Rng(2));
  n.service(ServiceKind::kRead, 0);
  EXPECT_GT(n.backlog(0), 0);
  EXPECT_EQ(n.backlog(sec(1)), 0);
}

TEST(Node, DigestCheaperThanRead) {
  NodeParams p;
  p.service_jitter_sigma = 0;
  p.disk_read_probability = 0;
  Node n(0, p, Rng(3));
  SimDuration read_total = 0, digest_total = 0;
  for (int i = 0; i < 100; ++i) {
    Node fresh_r(0, p, Rng(3));
    read_total += fresh_r.service(ServiceKind::kRead, 0);
    Node fresh_d(0, p, Rng(3));
    digest_total += fresh_d.service(ServiceKind::kDigest, 0);
  }
  EXPECT_LT(digest_total, read_total);
}

TEST(Node, DiskMissesInflateReads) {
  NodeParams cached;
  cached.disk_read_probability = 0;
  cached.service_jitter_sigma = 0;
  NodeParams disky = cached;
  disky.disk_read_probability = 1.0;
  SimDuration cached_total = 0, disky_total = 0;
  for (int i = 0; i < 200; ++i) {
    Node a(0, cached, Rng(100 + i));
    cached_total += a.service(ServiceKind::kRead, 0);
    Node b(0, disky, Rng(100 + i));
    disky_total += b.service(ServiceKind::kRead, 0);
  }
  EXPECT_GT(disky_total, cached_total + 200 * 50);
}

TEST(Node, BusyTimeAccumulates) {
  NodeParams p;
  p.service_jitter_sigma = 0;
  p.disk_read_probability = 0;
  Node n(0, p, Rng(4));
  n.service(ServiceKind::kWrite, 0);
  n.service(ServiceKind::kWrite, sec(1));
  EXPECT_EQ(n.requests_served(), 2u);
  EXPECT_NEAR(static_cast<double>(n.busy_time()),
              2.0 * static_cast<double>(p.cpu_write + p.commit_log_write), 2.0);
}

TEST(Node, DeadNodeRefusesService) {
  NodeParams p;
  Node n(0, p, Rng(5));
  n.set_alive(false);
  EXPECT_THROW(n.service(ServiceKind::kRead, 0), harmony::CheckError);
}

}  // namespace
}  // namespace harmony::cluster
