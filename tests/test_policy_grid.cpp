// Cross-policy invariants: every policy in the library must satisfy the same
// basic contract when run through the experiment harness — parameterized over
// the whole policy zoo (static levels, Harmony, Bismar, freshness, geo,
// related-work baselines).
#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/bismar.h"
#include "core/freshness_sla.h"
#include "core/harmony.h"
#include "core/static_policy.h"
#include "workload/runner.h"

namespace harmony {
namespace {

struct PolicyCase {
  std::string name;
  policy::PolicyFactory factory;
};

PolicyCase make_case(std::string name, policy::PolicyFactory f) {
  return {std::move(name), std::move(f)};
}

std::vector<PolicyCase> all_policies() {
  std::vector<PolicyCase> cases;
  cases.push_back(make_case("one", core::static_level(cluster::Level::kOne)));
  cases.push_back(make_case("two", core::static_level(cluster::Level::kTwo)));
  cases.push_back(
      make_case("quorum", core::static_level(cluster::Level::kQuorum)));
  cases.push_back(make_case("all", core::static_level(cluster::Level::kAll)));
  cases.push_back(make_case("local_quorum",
                            core::static_level(cluster::Level::kLocalQuorum,
                                               cluster::Level::kLocalQuorum)));
  cases.push_back(make_case("harmony05", core::harmony_policy(0.05)));
  cases.push_back(make_case("harmony40", core::harmony_policy(0.40)));
  cases.push_back(make_case("bismar", core::bismar_policy()));
  core::FreshnessSlaOptions fresh;
  fresh.deadline = 5 * kMillisecond;
  cases.push_back(make_case("freshness", core::freshness_sla_policy(fresh)));
  cases.push_back(
      make_case("conflict_rationing", core::conflict_rationing_policy()));
  cases.push_back(make_case("rw_ratio", core::rw_ratio_policy()));
  return cases;
}

class PolicyGrid : public ::testing::TestWithParam<std::size_t> {
 protected:
  workload::RunConfig config() const {
    workload::RunConfig cfg;
    cfg.cluster.node_count = 10;
    cfg.cluster.dc_count = 2;
    cfg.cluster.rf = 5;
    cfg.cluster.latency = net::TieredLatencyModel::ec2_two_az();
    cfg.workload = workload::WorkloadSpec::ycsb_a();
    cfg.workload.op_count = 8000;
    cfg.workload.record_count = 500;
    cfg.workload.clients_per_dc = 8;
    cfg.policy_tick = 200 * kMillisecond;
    cfg.warmup = 300 * kMillisecond;
    cfg.seed = 99;
    return cfg;
  }
};

TEST_P(PolicyGrid, HarnessContractHolds) {
  const auto cases = all_policies();
  const auto& c = cases[GetParam()];
  auto cfg = config();
  cfg.label = c.name;
  cfg.policy = c.factory;
  const auto r = workload::run_experiment(cfg);

  // Every operation completes without error on a healthy cluster.
  EXPECT_EQ(r.errors, 0u) << c.name;
  EXPECT_GT(r.ops, 4000u) << c.name;
  EXPECT_GT(r.throughput, 0.0) << c.name;

  // Latency measurements are coherent.
  EXPECT_GT(r.read_latency.count(), 0u) << c.name;
  EXPECT_LE(r.read_latency.percentile(50), r.read_latency.percentile(99))
      << c.name;

  // The replica knob stays in range.
  EXPECT_GE(r.avg_read_replicas, 1.0) << c.name;
  EXPECT_LE(r.avg_read_replicas, 5.0) << c.name;

  // Billing is present and consistent.
  EXPECT_GT(r.bill.total(), 0.0) << c.name;
  EXPECT_NEAR(r.bill.total(),
              r.bill.instances + r.bill.storage + r.bill.network + r.bill.energy,
              1e-12)
      << c.name;

  // Staleness accounting is self-consistent.
  const auto judged = r.stale_reads + r.fresh_reads;
  EXPECT_GT(judged, 0u) << c.name;
  if (judged > 0) {
    EXPECT_NEAR(r.stale_fraction,
                static_cast<double>(r.stale_reads) /
                    static_cast<double>(judged),
                1e-12)
        << c.name;
  }
}

TEST_P(PolicyGrid, DeterministicAcrossRepeats) {
  const auto cases = all_policies();
  const auto& c = cases[GetParam()];
  auto cfg = config();
  cfg.workload.op_count = 4000;
  cfg.policy = c.factory;
  const auto a = workload::run_experiment(cfg);
  const auto b = workload::run_experiment(cfg);
  EXPECT_EQ(a.sim_events, b.sim_events) << c.name;
  EXPECT_EQ(a.stale_reads, b.stale_reads) << c.name;
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput) << c.name;
  EXPECT_EQ(a.policy_switches, b.policy_switches) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyGrid, ::testing::Range<std::size_t>(0, 11),
    [](const ::testing::TestParamInfo<std::size_t>& param_info) {
      return all_policies()[param_info.param].name;
    });

}  // namespace
}  // namespace harmony
