// Binary-wide heap-allocation counting for zero-allocation assertions.
//
// alloc_guard.cpp replaces the global operator new (and its array/aligned
// variants) with versions that bump a counter before delegating to malloc.
// Counting is side-effect free for every other test in the binary; tests that
// care wrap their steady-state phase in an AllocGuard and assert
// allocations() == 0.
//
// Link alloc_guard.cpp into any test binary that includes this header.
#pragma once

#include <atomic>
#include <cstdint>

namespace harmony::testing {

/// Every global operator new (scalar, array, aligned) increments this.
extern std::atomic<std::uint64_t> g_alloc_count;

/// Scope marker: allocations() = global allocations since construction.
class AllocGuard {
 public:
  AllocGuard() : start_(g_alloc_count.load(std::memory_order_relaxed)) {}

  std::uint64_t allocations() const {
    return g_alloc_count.load(std::memory_order_relaxed) - start_;
  }

  /// Re-arm the guard (start a fresh measured region).
  void reset() { start_ = g_alloc_count.load(std::memory_order_relaxed); }

 private:
  std::uint64_t start_;
};

}  // namespace harmony::testing
