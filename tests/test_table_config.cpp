#include <gtest/gtest.h>

#include "common/check.h"
#include "common/config.h"
#include "common/table.h"
#include "common/time_types.h"

namespace harmony {
namespace {

TEST(TextTable, RendersAlignedGrid) {
  TextTable t({"policy", "stale"});
  t.add_row({"ONE", "61%"});
  t.add_row({"harmony(20%)", "3.5%"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| policy "), std::string::npos);
  EXPECT_NE(s.find("harmony(20%)"), std::string::npos);
  // Three horizontal rules: top, under header, bottom.
  int rules = 0;
  std::size_t pos = 0;
  while ((pos = s.find("\n+", pos)) != std::string::npos) {
    ++rules;
    ++pos;
  }
  EXPECT_EQ(rules + (s.rfind("+", 0) == 0 ? 1 : 0), 3);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.315), "31.5%");
  EXPECT_EQ(TextTable::money(1.5), "$1.50");
}

TEST(Config, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--ops=5000", "--scale=0.5", "--verbose",
                        "positional"};
  const Config c = Config::from_args(5, argv);
  EXPECT_EQ(c.get_int("ops", 0), 5000);
  EXPECT_DOUBLE_EQ(c.get_double("scale", 1.0), 0.5);
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_FALSE(c.has("positional"));
}

TEST(Config, DefaultsWhenMissing) {
  const Config c;
  EXPECT_EQ(c.get_int("nope", 7), 7);
  EXPECT_EQ(c.get_string("nope", "d"), "d");
  EXPECT_FALSE(c.get_bool("nope", false));
}

TEST(Config, BoolSpellings) {
  Config c;
  c.set("a", "true");
  c.set("b", "yes");
  c.set("c", "0");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_TRUE(c.get_bool("b", false));
  EXPECT_FALSE(c.get_bool("c", true));
}

TEST(TimeTypes, Conversions) {
  EXPECT_EQ(msec(1.5), 1500);
  EXPECT_EQ(sec(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_hours(kHour), 1.0);
}

TEST(TimeTypes, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(msec(2.5)), "2.50ms");
  EXPECT_EQ(format_duration(sec(3)), "3.00s");
}

}  // namespace
}  // namespace harmony
