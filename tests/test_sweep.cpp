#include "workload/sweep.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/static_policy.h"

namespace harmony::workload {
namespace {

RunConfig small_run(std::uint64_t ops = 2000) {
  RunConfig cfg;
  cfg.label = "cell";
  cfg.cluster.node_count = 6;
  cfg.cluster.dc_count = 2;
  cfg.cluster.rf = 3;
  cfg.cluster.latency = net::TieredLatencyModel::ec2_two_az();
  cfg.workload = WorkloadSpec::ycsb_a();
  cfg.workload.op_count = ops;
  cfg.workload.record_count = 200;
  cfg.workload.clients_per_dc = 4;
  cfg.policy = core::static_level(cluster::Level::kOne);
  cfg.warmup = 100 * kMillisecond;
  cfg.seed = 11;
  return cfg;
}

/// Everything the sweep aggregates, flattened for exact comparison.
std::vector<double> fingerprint(const std::vector<SweepStats>& stats) {
  std::vector<double> fp;
  for (const auto& s : stats) {
    fp.push_back(static_cast<double>(s.runs.size()));
    fp.push_back(s.throughput.mean);
    fp.push_back(s.throughput.stddev);
    fp.push_back(s.throughput.ci95);
    fp.push_back(s.stale_fraction.mean);
    fp.push_back(s.bill_total.mean);
    fp.push_back(s.avg_read_replicas.mean);
    fp.push_back(static_cast<double>(s.read_latency.count()));
    fp.push_back(static_cast<double>(s.read_latency.percentile(95)));
    fp.push_back(static_cast<double>(s.write_latency.count()));
    fp.push_back(static_cast<double>(s.staleness_age.count()));
    for (const auto& r : s.runs) {
      fp.push_back(static_cast<double>(r.sim_events));
      fp.push_back(static_cast<double>(r.stale_reads));
      fp.push_back(r.throughput);
      fp.push_back(r.bill.total());
    }
  }
  return fp;
}

std::vector<SweepStats> run_grid(std::size_t jobs, unsigned seeds = 3) {
  SweepOptions opts;
  opts.seeds = seeds;
  opts.jobs = jobs;
  SweepRunner runner(opts);
  auto one = small_run();
  one.label = "ONE";
  runner.add(one);
  auto quorum = small_run();
  quorum.label = "QUORUM";
  quorum.policy = core::static_level(cluster::Level::kQuorum);
  runner.add(quorum);
  return runner.run();
}

TEST(Sweep, JobsDoNotChangeResults) {
  // The acceptance bar: --jobs N must be byte-identical to --jobs 1.
  const auto serial = run_grid(1);
  const auto two = run_grid(2);
  const auto eight = run_grid(8);
  const auto fp = fingerprint(serial);
  EXPECT_EQ(fp, fingerprint(two));
  EXPECT_EQ(fp, fingerprint(eight));
}

TEST(Sweep, SingleSeedCellMatchesDirectRunExperiment) {
  // A 1-seed sweep must reproduce a plain serial run_experiment() call.
  SweepOptions opts;
  opts.seeds = 1;
  opts.jobs = 4;
  SweepRunner runner(opts);
  runner.add(small_run());
  const auto stats = runner.run();
  const auto direct = run_experiment(small_run());
  ASSERT_EQ(stats.size(), 1u);
  ASSERT_EQ(stats[0].runs.size(), 1u);
  const auto& r = stats[0].runs[0];
  EXPECT_EQ(r.sim_events, direct.sim_events);
  EXPECT_EQ(r.stale_reads, direct.stale_reads);
  EXPECT_EQ(r.reads, direct.reads);
  EXPECT_DOUBLE_EQ(r.throughput, direct.throughput);
  EXPECT_DOUBLE_EQ(r.bill.total(), direct.bill.total());
  EXPECT_EQ(stats[0].read_latency.count(), direct.read_latency.count());
  EXPECT_EQ(stats[0].read_latency.percentile(95),
            direct.read_latency.percentile(95));
}

TEST(Sweep, SeedsAreBasePlusReplicate) {
  SweepOptions opts;
  opts.seeds = 3;
  opts.jobs = 2;
  SweepRunner runner(opts);
  runner.add(small_run());
  const auto stats = runner.run();
  ASSERT_EQ(stats[0].runs.size(), 3u);
  for (unsigned i = 0; i < 3; ++i) {
    auto cfg = small_run();
    cfg.seed += i;
    const auto direct = run_experiment(cfg);
    EXPECT_EQ(stats[0].runs[i].sim_events, direct.sim_events) << "seed +" << i;
  }
  // Different seeds should actually differ.
  EXPECT_NE(stats[0].runs[0].sim_events, stats[0].runs[1].sim_events);
}

TEST(Sweep, CellOrderIsInsertionOrder) {
  const auto stats = run_grid(4);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].label, "ONE");
  EXPECT_EQ(stats[1].label, "QUORUM");
  EXPECT_EQ(stats[0].policy_name, "static-ONE");
}

TEST(Sweep, MergedHistogramsCoverAllSeeds) {
  const auto stats = run_grid(2, 3);
  std::uint64_t reads = 0;
  for (const auto& r : stats[0].runs) reads += r.read_latency.count();
  EXPECT_EQ(stats[0].read_latency.count(), reads);
  EXPECT_GT(reads, 0u);
}

TEST(Sweep, OverComputesArbitraryMetrics) {
  const auto stats = run_grid(2, 3);
  const auto errors = stats[0].over(
      [](const RunResult& r) { return static_cast<double>(r.errors); });
  EXPECT_EQ(errors.n, 3u);
  const auto thr = stats[0].over([](const RunResult& r) { return r.throughput; });
  EXPECT_DOUBLE_EQ(thr.mean, stats[0].throughput.mean);
}

TEST(Sweep, ZeroJobsUsesHardwareConcurrency) {
  SweepOptions opts;
  opts.seeds = 2;
  opts.jobs = 0;
  SweepRunner runner(opts);
  runner.add(small_run(1500));
  const auto stats = runner.run();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].runs.size(), 2u);
}

TEST(Sweep, ShardedCellsClampToSerialUnderParallelGrid) {
  // A sharded cell inside a parallel grid is clamped to one shard thread
  // (no nested parallelism); by the sharding determinism contract the
  // aggregated output must match both the jobs=1 grid and the unclamped
  // direct run.
  auto cell = small_run(1500);
  cell.cluster.dc_count = 2;
  cell.cluster.node_count = 6;
  cell.cluster.latency.cross_dc.floor = kMillisecond;
  cell.num_shard_threads = 4;
  SweepOptions serial_opts;
  serial_opts.seeds = 2;
  serial_opts.jobs = 1;
  SweepRunner serial(serial_opts);
  serial.add(cell);
  SweepOptions par_opts;
  par_opts.seeds = 2;
  par_opts.jobs = 4;
  SweepRunner parallel(par_opts);
  parallel.add(cell);
  const auto a = serial.run();
  const auto b = parallel.run();
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  const auto direct = run_experiment(cell);
  EXPECT_EQ(a[0].runs[0].sim_events, direct.sim_events);
  EXPECT_DOUBLE_EQ(a[0].runs[0].throughput, direct.throughput);
}

TEST(Sweep, RequiresPolicy) {
  SweepRunner runner;
  RunConfig cfg = small_run();
  cfg.policy = nullptr;
  EXPECT_THROW(runner.add(std::move(cfg)), CheckError);
}

TEST(MetricSummary, BasicStatistics) {
  const auto s = summarize_metric({2.0, 4.0, 6.0});
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  // t(0.975, df=2) = 4.303; half-width = t * s / sqrt(n).
  EXPECT_NEAR(s.ci95, 4.303 * 2.0 / std::sqrt(3.0), 1e-9);
}

TEST(MetricSummary, SingleSampleHasNoSpread) {
  const auto s = summarize_metric({7.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(MetricSummary, EmptyIsZero) {
  const auto s = summarize_metric({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(MetricSummary, LargeSampleUsesNormalQuantile) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i % 10));
  const auto s = summarize_metric(xs);
  EXPECT_NEAR(s.ci95, 1.96 * s.stddev / 10.0, 1e-9);
}

}  // namespace
}  // namespace harmony::workload
