#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace harmony {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 200; ++i) {
    fs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ThreadCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelMap, PreservesOrder) {
  auto out = parallel_map<int>(
      16, [](std::size_t i) { return static_cast<int>(i * i); }, 4);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, WorksWithSingleThread) {
  auto out = parallel_map<std::size_t>(
      8, [](std::size_t i) { return i + 1; }, 1);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}), 36u);
}

TEST(ParallelMap, PropagatesException) {
  EXPECT_THROW(parallel_map<int>(
                   32,
                   [](std::size_t i) -> int {
                     if (i == 17) throw std::runtime_error("boom");
                     return static_cast<int>(i);
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelMap, IndexOrderUnderUnevenWork) {
  // Tasks finish out of submission order (later indices are much cheaper);
  // results must still come back in index order.
  auto out = parallel_map<std::size_t>(
      64,
      [](std::size_t i) {
        volatile std::size_t sink = 0;
        for (std::size_t k = 0; k < (64 - i) * 5000; ++k) sink = sink + k;
        return i;
      },
      8);
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, ParallelForFirstExceptionWins) {
  // Several iterations throw; exactly one propagates and the call returns.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i % 10 == 3) {
                                     throw std::runtime_error("fail");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitAfterParallelForStillWorks) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

}  // namespace
}  // namespace harmony
