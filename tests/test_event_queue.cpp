// Regression tests for the slot-pool event kernel: slot/generation reuse
// safety under cancellation churn, move-only (never-copied) callbacks,
// steady-state allocation-freedom, and whole-simulation determinism over a
// mixed schedule/cancel workload.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <vector>

#include "alloc_guard.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace harmony::sim {
namespace {

// The kernel contract: callbacks are consumed exactly once and never copied.
static_assert(!std::is_copy_constructible_v<EventFn>);
static_assert(!std::is_copy_assignable_v<EventFn>);
static_assert(std::is_nothrow_move_constructible_v<EventFn>);

TEST(EventFn, AcceptsMoveOnlyCallables) {
  auto flag = std::make_unique<bool>(false);
  bool* raw = flag.get();
  EventFn fn = [owned = std::move(flag)] { *owned = true; };
  fn();
  EXPECT_TRUE(*raw);
}

TEST(EventFn, OversizedCapturesFallBackToHeapAndStillFire) {
  struct Big {
    char bytes[512] = {};
    int tag = 7;
  } big;
  int seen = 0;
  EventFn fn = [big, &seen] { seen = big.tag; };
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, ScheduleMoveOnlyCallbackThroughSimulation) {
  Simulation sim;
  auto payload = std::make_unique<int>(41);
  int result = 0;
  sim.schedule(10, [p = std::move(payload), &result] { result = *p + 1; });
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(EventQueue, SlotReuseDoesNotResurrectCancelledHandles) {
  EventQueue q;
  bool a_ran = false;
  bool b_ran = false;
  EventHandle a = q.push(10, [&] { a_ran = true; });
  a.cancel();
  // The free list is LIFO, so this push reuses a's slot with a new generation.
  EventHandle b = q.push(20, [&] { b_ran = true; });
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  a.cancel();  // stale handle: must not touch the new occupant
  EXPECT_TRUE(b.pending());

  SimTime when = 0;
  EventFn fn;
  ASSERT_TRUE(q.pop(when, fn));
  fn();
  EXPECT_EQ(when, 20);
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(q.pop(when, fn));
}

TEST(EventQueue, CancellationChurnStress) {
  // Heavy tombstone churn: every slot is recycled many times; a cancelled or
  // already-fired event must never fire, and live events must all fire.
  Simulation sim(123);
  Rng rng = sim.fork_rng(9);
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::vector<EventHandle> handles;
  std::vector<bool> was_cancelled;
  for (int round = 0; round < 200; ++round) {
    handles.clear();
    was_cancelled.clear();
    const SimTime base = sim.now();
    for (int i = 0; i < 100; ++i) {
      handles.push_back(sim.schedule_at(
          base + 1 + static_cast<SimTime>(rng.uniform_u64(50)),
          [&fired] { ++fired; }));
      was_cancelled.push_back(false);
    }
    // Cancel a random half, some of them twice (idempotence under reuse).
    for (int i = 0; i < 100; ++i) {
      const std::size_t pick = rng.uniform_u64(handles.size());
      if (rng.chance(0.5)) {
        if (!was_cancelled[pick]) {
          ++cancelled;
          was_cancelled[pick] = true;
        }
        handles[pick].cancel();
      }
    }
    sim.run();
    for (std::size_t i = 0; i < handles.size(); ++i) {
      EXPECT_FALSE(handles[i].pending());
    }
  }
  EXPECT_EQ(fired + cancelled, 200u * 100u);
  EXPECT_EQ(sim.events_processed(), fired);
}

TEST(EventQueue, SteadyStateSchedulePopIsAllocationFree) {
  Simulation sim;
  std::uint64_t ticks = 0;
  // Warm-up: grow the slab and the heap vector past anything the measured
  // phase needs, then drain.
  for (int i = 0; i < 4096; ++i) {
    sim.schedule(i % 101, [&ticks] { ++ticks; });
  }
  sim.run();

  const harmony::testing::AllocGuard guard;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) {
      // Realistic capture size (a few words), still within inline capacity.
      sim.schedule(i % 13, [&ticks, round, i] {
        ticks += static_cast<std::uint64_t>(round + i);
      });
    }
    sim.run();
  }
  EXPECT_EQ(guard.allocations(), 0u) << "schedule+pop cycle allocated";
  EXPECT_GT(ticks, 0u);
}

// Mixed schedule/cancel workload driven entirely by the simulation's own RNG:
// the kernel must be bit-reproducible from the seed.
std::pair<std::uint64_t, SimTime> churn_run(std::uint64_t seed) {
  Simulation sim(seed);
  auto rng = std::make_shared<Rng>(sim.fork_rng(77));
  auto live = std::make_shared<std::vector<EventHandle>>();
  auto budget = std::make_shared<int>(5000);

  struct Spawner {
    Simulation& sim;
    std::shared_ptr<Rng> rng;
    std::shared_ptr<std::vector<EventHandle>> live;
    std::shared_ptr<int> budget;
    void operator()() const {
      // Sometimes cancel an outstanding event, sometimes schedule new ones.
      if (!live->empty() && rng->chance(0.3)) {
        const std::size_t pick = rng->uniform_u64(live->size());
        (*live)[pick].cancel();
        (*live)[pick] = (*live).back();
        live->pop_back();
      }
      const int spawn = static_cast<int>(rng->uniform_u64(3));
      for (int s = 0; s < spawn && *budget > 0; ++s) {
        --*budget;
        live->push_back(sim.schedule(
            static_cast<SimDuration>(1 + rng->uniform_u64(500)), Spawner{*this}));
      }
    }
  };
  for (int i = 0; i < 50; ++i) {
    --*budget;
    live->push_back(sim.schedule(static_cast<SimDuration>(1 + i),
                                 Spawner{sim, rng, live, budget}));
  }
  sim.run();
  return {sim.events_processed(), sim.now()};
}

TEST(EventQueue, DeterministicUnderScheduleCancelChurn) {
  const auto a = churn_run(42);
  const auto b = churn_run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, 50u);  // the workload actually ran events

  const auto c = churn_run(43);
  // Different seeds should diverge (not a hard guarantee, but with 5000
  // events the chance of an accidental collision in both fields is nil).
  EXPECT_TRUE(c.first != a.first || c.second != a.second);
}

TEST(EventQueue, PopBeforeHonorsHorizon) {
  EventQueue q;
  int ran = 0;
  q.push(10, [&] { ++ran; });
  q.push(30, [&] { ++ran; });
  SimTime when = 0;
  EventFn fn;
  EXPECT_EQ(q.pop_before(20, when, fn), EventQueue::PopResult::kEvent);
  EXPECT_EQ(when, 10);
  EXPECT_EQ(q.pop_before(20, when, fn), EventQueue::PopResult::kLater);
  EXPECT_EQ(q.pop_before(30, when, fn), EventQueue::PopResult::kEvent);
  EXPECT_EQ(q.pop_before(30, when, fn), EventQueue::PopResult::kEmpty);
}

}  // namespace
}  // namespace harmony::sim
