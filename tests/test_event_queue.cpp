// Regression tests for the slot-pool event kernel: slot/generation reuse
// safety under cancellation churn, move-only (never-copied) callbacks,
// steady-state allocation-freedom, and whole-simulation determinism over a
// mixed schedule/cancel workload.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <vector>

#include "alloc_guard.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace harmony::sim {
namespace {

// The kernel contract: callbacks are consumed exactly once and never copied.
static_assert(!std::is_copy_constructible_v<EventFn>);
static_assert(!std::is_copy_assignable_v<EventFn>);
static_assert(std::is_nothrow_move_constructible_v<EventFn>);

TEST(EventFn, AcceptsMoveOnlyCallables) {
  auto flag = std::make_unique<bool>(false);
  bool* raw = flag.get();
  EventFn fn = [owned = std::move(flag)] { *owned = true; };
  fn();
  EXPECT_TRUE(*raw);
}

TEST(EventFn, OversizedCapturesFallBackToHeapAndStillFire) {
  struct Big {
    char bytes[512] = {};
    int tag = 7;
  } big;
  int seen = 0;
  EventFn fn = [big, &seen] { seen = big.tag; };
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueue, ScheduleMoveOnlyCallbackThroughSimulation) {
  Simulation sim;
  auto payload = std::make_unique<int>(41);
  int result = 0;
  sim.schedule(10, [p = std::move(payload), &result] { result = *p + 1; });
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(EventQueue, SlotReuseDoesNotResurrectCancelledHandles) {
  EventQueue q;
  bool a_ran = false;
  bool b_ran = false;
  EventHandle a = q.push(10, [&] { a_ran = true; });
  a.cancel();
  // The free list is LIFO, so this push reuses a's slot with a new generation.
  EventHandle b = q.push(20, [&] { b_ran = true; });
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  a.cancel();  // stale handle: must not touch the new occupant
  EXPECT_TRUE(b.pending());

  SimTime when = 0;
  EventFn fn;
  ASSERT_TRUE(q.pop(when, fn));
  fn();
  EXPECT_EQ(when, 20);
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(q.pop(when, fn));
}

TEST(EventQueue, CancellationChurnStress) {
  // Heavy tombstone churn: every slot is recycled many times; a cancelled or
  // already-fired event must never fire, and live events must all fire.
  Simulation sim(123);
  Rng rng = sim.fork_rng(9);
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::vector<EventHandle> handles;
  std::vector<bool> was_cancelled;
  for (int round = 0; round < 200; ++round) {
    handles.clear();
    was_cancelled.clear();
    const SimTime base = sim.now();
    for (int i = 0; i < 100; ++i) {
      handles.push_back(sim.schedule_at(
          base + 1 + static_cast<SimTime>(rng.uniform_u64(50)),
          [&fired] { ++fired; }));
      was_cancelled.push_back(false);
    }
    // Cancel a random half, some of them twice (idempotence under reuse).
    for (int i = 0; i < 100; ++i) {
      const std::size_t pick = rng.uniform_u64(handles.size());
      if (rng.chance(0.5)) {
        if (!was_cancelled[pick]) {
          ++cancelled;
          was_cancelled[pick] = true;
        }
        handles[pick].cancel();
      }
    }
    sim.run();
    for (std::size_t i = 0; i < handles.size(); ++i) {
      EXPECT_FALSE(handles[i].pending());
    }
  }
  EXPECT_EQ(fired + cancelled, 200u * 100u);
  EXPECT_EQ(sim.events_processed(), fired);
}

TEST(EventQueue, SteadyStateSchedulePopIsAllocationFree) {
  Simulation sim;
  std::uint64_t ticks = 0;
  // Warm-up: grow the slab and the heap vector past anything the measured
  // phase needs, then drain.
  for (int i = 0; i < 4096; ++i) {
    sim.schedule(i % 101, [&ticks] { ++ticks; });
  }
  sim.run();

  const harmony::testing::AllocGuard guard;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) {
      // Realistic capture size (a few words), still within inline capacity.
      sim.schedule(i % 13, [&ticks, round, i] {
        ticks += static_cast<std::uint64_t>(round + i);
      });
    }
    sim.run();
  }
  EXPECT_EQ(guard.allocations(), 0u) << "schedule+pop cycle allocated";
  EXPECT_GT(ticks, 0u);
}

// Mixed schedule/cancel workload driven entirely by the simulation's own RNG:
// the kernel must be bit-reproducible from the seed.
std::pair<std::uint64_t, SimTime> churn_run(std::uint64_t seed) {
  Simulation sim(seed);
  auto rng = std::make_shared<Rng>(sim.fork_rng(77));
  auto live = std::make_shared<std::vector<EventHandle>>();
  auto budget = std::make_shared<int>(5000);

  struct Spawner {
    Simulation& sim;
    std::shared_ptr<Rng> rng;
    std::shared_ptr<std::vector<EventHandle>> live;
    std::shared_ptr<int> budget;
    void operator()() const {
      // Sometimes cancel an outstanding event, sometimes schedule new ones.
      if (!live->empty() && rng->chance(0.3)) {
        const std::size_t pick = rng->uniform_u64(live->size());
        (*live)[pick].cancel();
        (*live)[pick] = (*live).back();
        live->pop_back();
      }
      const int spawn = static_cast<int>(rng->uniform_u64(3));
      for (int s = 0; s < spawn && *budget > 0; ++s) {
        --*budget;
        live->push_back(sim.schedule(
            static_cast<SimDuration>(1 + rng->uniform_u64(500)), Spawner{*this}));
      }
    }
  };
  for (int i = 0; i < 50; ++i) {
    --*budget;
    live->push_back(sim.schedule(static_cast<SimDuration>(1 + i),
                                 Spawner{sim, rng, live, budget}));
  }
  sim.run();
  return {sim.events_processed(), sim.now()};
}

TEST(EventQueue, DeterministicUnderScheduleCancelChurn) {
  const auto a = churn_run(42);
  const auto b = churn_run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, 50u);  // the workload actually ran events

  const auto c = churn_run(43);
  // Different seeds should diverge (not a hard guarantee, but with 5000
  // events the chance of an accidental collision in both fields is nil).
  EXPECT_TRUE(c.first != a.first || c.second != a.second);
}

// ---- typed hot lane ---------------------------------------------------------

/// Test dispatcher for the user event domain: appends the event's tag to the
/// vector named by `target`.
void record_probe(const TypedEvent& ev) {
  static_cast<std::vector<std::uint32_t>*>(ev.target)
      ->push_back(static_cast<std::uint32_t>(ev.u.raw[0]));
}

TypedEvent probe(std::vector<std::uint32_t>* sink, std::uint32_t tag) {
  TypedEvent ev;
  ev.kind = EventKind::kUserProbe;
  ev.target = sink;
  ev.u.raw[0] = tag;
  return ev;
}

TEST(TypedLane, InterleavesWithClosuresInScheduleOrder) {
  // Same instant, alternating lanes: the shared (time, seq) order must run
  // events exactly in schedule order, regardless of which lane each rode.
  Simulation sim;
  sim.set_event_dispatcher(EventDomain::kUser, &record_probe);
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      sim.schedule_event(50, probe(&order, i));
    } else {
      sim.schedule(50, [&order, i] { order.push_back(i); });
    }
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(TypedLane, ErasedFallbackRunsTheIdenticalSequence) {
  // set_typed_lane(false) wraps every typed event in a closure calling the
  // same dispatcher; order, counts, and times must be unchanged.
  auto run = [](bool typed) {
    Simulation sim(7);
    sim.set_typed_lane(typed);
    sim.set_event_dispatcher(EventDomain::kUser, &record_probe);
    std::vector<std::uint32_t> order;
    Rng rng(3);
    for (std::uint32_t i = 0; i < 200; ++i) {
      const auto delay = static_cast<SimDuration>(rng.uniform_u64(40));
      if (rng.chance(0.5)) {
        sim.schedule_event(delay, probe(&order, i));
      } else {
        sim.schedule(delay, [&order, i] { order.push_back(i); });
      }
    }
    sim.run();
    return std::make_pair(order, sim.now());
  };
  const auto typed = run(true);
  const auto erased = run(false);
  EXPECT_EQ(typed.first, erased.first);
  EXPECT_EQ(typed.second, erased.second);
}

TEST(TypedLane, ReentrantDispatchCanSchedule) {
  // A dispatcher that schedules follow-up events mid-pop (the request path's
  // normal shape: every hop schedules the next) must not invalidate the
  // entry being dispatched.
  struct Chain {
    Simulation* sim = nullptr;
    int hops = 0;
  } chain;
  Simulation sim;
  chain.sim = &sim;
  sim.set_event_dispatcher(EventDomain::kUser, [](const TypedEvent& ev) {
    Chain* c = static_cast<Chain*>(ev.target);
    if (++c->hops < 64) {
      TypedEvent next;
      next.kind = EventKind::kUserProbe;
      next.target = c;
      c->sim->schedule_event(static_cast<SimDuration>(c->hops % 7), next);
    }
  });
  TypedEvent first;
  first.kind = EventKind::kUserProbe;
  first.target = &chain;
  sim.schedule_event(1, first);
  sim.run();
  EXPECT_EQ(chain.hops, 64);
  EXPECT_EQ(sim.events_processed(), 64u);
}

TEST(TypedLane, SteadyStateScheduleDispatchIsAllocationFree) {
  Simulation sim;
  sim.set_event_dispatcher(EventDomain::kUser, &record_probe);
  std::vector<std::uint32_t> sink;
  sink.reserve(1 << 20);
  for (int i = 0; i < 4096; ++i) {
    sim.schedule_event(i % 101, probe(&sink, 1));
  }
  sim.run();

  const harmony::testing::AllocGuard guard;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) {
      sim.schedule_event(i % 13, probe(&sink, 2));
    }
    sim.run();
  }
  EXPECT_EQ(guard.allocations(), 0u) << "typed schedule+dispatch allocated";
  EXPECT_GT(sink.size(), 4096u);
}

TEST(TypedLane, FiringWithoutDispatcherThrows) {
  Simulation sim;
  std::vector<std::uint32_t> sink;
  sim.schedule_event(1, probe(&sink, 1));
  EXPECT_THROW(sim.run(), CheckError);
}

TEST(TypedLane, CancelStaysEagerOnClosureLane) {
  // Cancelling a closure event removes its heap entry immediately: the queue
  // reports empty without waiting for the dead entry's expiry to pop.
  Simulation sim;
  bool ran = false;
  auto h = sim.schedule(1'000'000, [&ran] { ran = true; });
  EXPECT_FALSE(sim.idle());
  h.cancel();
  EXPECT_TRUE(sim.idle());  // eager removal, no tombstone left behind
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), 0);
}

TEST(EventQueue, PopBeforeHonorsHorizon) {
  EventQueue q;
  int ran = 0;
  q.push(10, [&] { ++ran; });
  q.push(30, [&] { ++ran; });
  SimTime when = 0;
  EventFn fn;
  EXPECT_EQ(q.pop_before(20, when, fn), EventQueue::PopResult::kEvent);
  EXPECT_EQ(when, 10);
  EXPECT_EQ(q.pop_before(20, when, fn), EventQueue::PopResult::kLater);
  EXPECT_EQ(q.pop_before(30, when, fn), EventQueue::PopResult::kEvent);
  EXPECT_EQ(q.pop_before(30, when, fn), EventQueue::PopResult::kEmpty);
}

}  // namespace
}  // namespace harmony::sim
