#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/dbscan.h"
#include "ml/features.h"
#include "ml/kmeans.h"
#include "ml/silhouette.h"

namespace harmony::ml {
namespace {

/// Three well-separated Gaussian blobs in 2D.
FeatureMatrix three_blobs(int per_cluster, std::uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      x.push_back({centers[c][0] + rng.normal() * 0.5,
                   centers[c][1] + rng.normal() * 0.5});
    }
  }
  return x;
}

TEST(Features, SquaredDistance) {
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
  EXPECT_THROW(squared_distance({1}, {1, 2}), CheckError);
}

TEST(ZScore, NormalizesToZeroMeanUnitVar) {
  FeatureMatrix x = {{1, 100}, {2, 200}, {3, 300}, {4, 400}};
  ZScoreNormalizer n;
  n.fit(x);
  const auto t = n.transform(x);
  double mean0 = 0, mean1 = 0;
  for (const auto& row : t) {
    mean0 += row[0];
    mean1 += row[1];
  }
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(mean1, 0.0, 1e-12);
}

TEST(ZScore, ConstantFeatureMapsToZero) {
  FeatureMatrix x = {{5, 1}, {5, 2}, {5, 3}};
  ZScoreNormalizer n;
  n.fit(x);
  for (const auto& row : n.transform(x)) EXPECT_EQ(row[0], 0.0);
}

TEST(MinMax, MapsToUnitInterval) {
  FeatureMatrix x = {{0, 10}, {5, 20}, {10, 30}};
  MinMaxNormalizer n;
  n.fit(x);
  const auto t = n.transform(x);
  EXPECT_DOUBLE_EQ(t[0][0], 0.0);
  EXPECT_DOUBLE_EQ(t[2][0], 1.0);
  EXPECT_DOUBLE_EQ(t[1][1], 0.5);
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const auto x = three_blobs(50, 1);
  KMeansOptions opt;
  opt.k = 3;
  const auto r = kmeans(x, opt);
  ASSERT_EQ(r.centroids.size(), 3u);
  // Every cluster has ~50 members.
  for (const auto s : r.sizes) EXPECT_NEAR(static_cast<double>(s), 50.0, 5.0);
  // Points within a blob share a label.
  for (int c = 0; c < 3; ++c) {
    const int label = r.labels[c * 50];
    for (int i = 1; i < 50; ++i) EXPECT_EQ(r.labels[c * 50 + i], label);
  }
}

TEST(KMeans, DeterministicInSeed) {
  const auto x = three_blobs(30, 2);
  KMeansOptions opt;
  opt.k = 3;
  opt.seed = 77;
  const auto a = kmeans(x, opt);
  const auto b = kmeans(x, opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, InertiaDecreasesWithK) {
  const auto x = three_blobs(30, 3);
  double prev = 1e300;
  for (int k = 1; k <= 4; ++k) {
    KMeansOptions opt;
    opt.k = k;
    const auto r = kmeans(x, opt);
    EXPECT_LE(r.inertia, prev + 1e-9);
    prev = r.inertia;
  }
}

TEST(KMeans, KEqualsOneGivesGrandMean) {
  FeatureMatrix x = {{0, 0}, {2, 2}, {4, 4}};
  KMeansOptions opt;
  opt.k = 1;
  const auto r = kmeans(x, opt);
  EXPECT_NEAR(r.centroids[0][0], 2.0, 1e-9);
  EXPECT_NEAR(r.centroids[0][1], 2.0, 1e-9);
}

TEST(KMeans, RejectsKBeyondSamples) {
  FeatureMatrix x = {{1, 1}, {2, 2}};
  KMeansOptions opt;
  opt.k = 3;
  EXPECT_THROW(kmeans(x, opt), CheckError);
}

TEST(KMeans, AssignLabelsMatchesFit) {
  const auto x = three_blobs(20, 4);
  KMeansOptions opt;
  opt.k = 3;
  const auto r = kmeans(x, opt);
  EXPECT_EQ(assign_labels(x, r.centroids), r.labels);
}

TEST(Silhouette, HighForSeparatedLowForMixed) {
  const auto separated = three_blobs(30, 5);
  KMeansOptions opt;
  opt.k = 3;
  const auto r = kmeans(separated, opt);
  const double good = silhouette_score(separated, r.labels, 3);
  EXPECT_GT(good, 0.8);

  // One blob split into two arbitrary halves scores poorly.
  Rng rng(6);
  FeatureMatrix blob;
  for (int i = 0; i < 60; ++i) blob.push_back({rng.normal(), rng.normal()});
  std::vector<int> split_labels(60);
  for (int i = 0; i < 60; ++i) split_labels[i] = i % 2;
  EXPECT_LT(silhouette_score(blob, split_labels, 2), 0.2);
}

TEST(Silhouette, SelectKFindsThree) {
  const auto x = three_blobs(40, 7);
  KMeansOptions base;
  const auto sel = select_k(x, 2, 6, base);
  EXPECT_EQ(sel.best_k, 3);
  EXPECT_GT(sel.best_score, 0.7);
  EXPECT_EQ(sel.scores.size(), 5u);
}

TEST(Dbscan, FindsBlobsAndNoise) {
  auto x = three_blobs(40, 8);
  x.push_back({100.0, 100.0});  // an outlier
  DbscanOptions opt;
  opt.eps = 2.0;
  opt.min_points = 4;
  const auto r = dbscan(x, opt);
  EXPECT_EQ(r.cluster_count, 3);
  EXPECT_EQ(r.noise_count, 1u);
  EXPECT_EQ(r.labels.back(), -1);
}

TEST(Dbscan, EpsControlsMerging) {
  const auto x = three_blobs(40, 9);
  DbscanOptions wide;
  wide.eps = 50.0;
  wide.min_points = 4;
  EXPECT_EQ(dbscan(x, wide).cluster_count, 1);
}

TEST(Classifier, PredictsNearestCentroid) {
  NearestCentroidClassifier c({{0, 0}, {10, 10}});
  EXPECT_EQ(c.predict({1, 1}), 0);
  EXPECT_EQ(c.predict({9, 9}), 1);
  EXPECT_NEAR(c.distance_to_assigned({3, 4}), 5.0, 1e-9);
  EXPECT_EQ(c.state_count(), 2u);
}

TEST(Classifier, UntrainedThrows) {
  NearestCentroidClassifier c;
  EXPECT_THROW(c.predict({1.0}), CheckError);
}

}  // namespace
}  // namespace harmony::ml
