#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <optional>

#include "common/check.h"

namespace harmony::cluster {
namespace {

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.node_count = 10;
  cfg.dc_count = 2;
  cfg.rf = 5;
  cfg.use_nts = true;
  cfg.latency = net::TieredLatencyModel::ec2_two_az();
  return cfg;
}

TEST(Cluster, PreloadPopulatesAllReplicas) {
  sim::Simulation sim(1);
  Cluster c(sim, small_config());
  c.preload_range(100, 512);
  for (Key k = 0; k < 100; ++k) {
    for (const auto r : c.replicas_for(k)) {
      EXPECT_TRUE(c.node(r).store().read(k).has_value());
    }
  }
  EXPECT_EQ(c.storage_bytes(), 100ull * 512 * 5);
}

TEST(Cluster, WriteReachesAllReplicasEventually) {
  sim::Simulation sim(2);
  Cluster c(sim, small_config());
  bool acked = false;
  c.client_write(0, 7, 256, resolve_count(1, 5), [&](const WriteResult& w) {
    EXPECT_TRUE(w.ok);
    acked = true;
  });
  sim.run();
  EXPECT_TRUE(acked);
  for (const auto r : c.replicas_for(7)) {
    const auto v = c.node(r).store().read(7);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->size_bytes, 256u);
  }
}

TEST(Cluster, ReadFindsWrittenValue) {
  sim::Simulation sim(3);
  Cluster c(sim, small_config());
  std::optional<ReadResult> result;
  c.client_write(0, 9, 128, resolve_count(5, 5), [&](const WriteResult& w) {
    ASSERT_TRUE(w.ok);
    c.client_read(1, 9, resolve_count(1, 5), [&](const ReadResult& r) {
      result = r;
    });
  });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->value_size, 128u);
  EXPECT_FALSE(result->stale);  // write at ALL completed before the read
}

TEST(Cluster, ReadOfMissingKeyIsOkNotFound) {
  sim::Simulation sim(4);
  Cluster c(sim, small_config());
  std::optional<ReadResult> result;
  c.client_read(0, 424242, resolve_count(2, 5),
                [&](const ReadResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_FALSE(result->found);
}

TEST(Cluster, AckLevelControlsResponseTime) {
  // Writing at ONE responds before writing at ALL under WAN latencies.
  sim::Simulation sim(5);
  Cluster c(sim, small_config());
  SimTime t_one = 0, t_all = 0;
  c.client_write(0, 1, 64, resolve_count(1, 5),
                 [&](const WriteResult&) { t_one = sim.now(); });
  sim.run();
  sim::Simulation sim2(5);
  Cluster c2(sim2, small_config());
  c2.client_write(0, 1, 64, resolve_count(5, 5),
                  [&](const WriteResult&) { t_all = sim2.now(); });
  sim2.run();
  EXPECT_LT(t_one, t_all);
}

// Quorum-overlap property: R+W>N reads are never stale, for several (R, W).
struct RwCase {
  int read_replicas;
  int write_acks;
};

class QuorumOverlapNeverStale : public ::testing::TestWithParam<RwCase> {};

TEST_P(QuorumOverlapNeverStale, UnderConcurrentLoad) {
  const auto rw = GetParam();
  sim::Simulation sim(42);
  auto cfg = small_config();
  cfg.read_repair_chance = 0;  // no help from repair
  Cluster c(sim, cfg);
  c.preload_range(4, 64);

  // Interleave writes and reads on a tiny hot key space.
  int stale = 0, judged = 0;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    sim.schedule(i * 300, [&, i] {
      const Key key = i % 4;
      const auto dc = static_cast<net::DcId>(i % 2);
      if (i % 2 == 0) {
        c.client_write(dc, key, 64, resolve_count(rw.write_acks, 5),
                       [](const WriteResult&) {});
      } else {
        c.client_read(dc, key, resolve_count(rw.read_replicas, 5),
                      [&](const ReadResult& r) {
                        if (r.ok) {
                          ++judged;
                          if (r.stale) ++stale;
                        }
                      });
      }
    });
  }
  sim.run();
  EXPECT_GT(judged, 100);
  EXPECT_EQ(stale, 0) << "R=" << rw.read_replicas << " W=" << rw.write_acks;
}

INSTANTIATE_TEST_SUITE_P(Overlapping, QuorumOverlapNeverStale,
                         ::testing::Values(RwCase{3, 3}, RwCase{5, 1},
                                           RwCase{1, 5}, RwCase{4, 2}));

TEST(Cluster, WeakReadsGoStaleUnderConcurrentLoad) {
  sim::Simulation sim(43);
  auto cfg = small_config();
  cfg.read_repair_chance = 0;
  Cluster c(sim, cfg);
  c.preload_range(2, 64);
  int stale = 0, judged = 0;
  // One hot key, written from DC 0 at a period shorter than the cross-DC
  // propagation delay; readers alternate DCs, so DC-1 readers keep hitting
  // their local (still-stale) replica.
  for (int i = 0; i < 600; ++i) {
    sim.schedule(i * 150, [&, i] {
      const Key key = 0;
      if (i % 3 == 0) {
        c.client_write(0, key, 64, resolve_count(1, 5),
                       [](const WriteResult&) {});
      } else {
        const auto dc = static_cast<net::DcId>(i % 2);
        c.client_read(dc, key, resolve_count(1, 5), [&](const ReadResult& r) {
          if (r.ok) {
            ++judged;
            if (r.stale) ++stale;
          }
        });
      }
    });
  }
  sim.run();
  EXPECT_GT(judged, 200);
  EXPECT_GT(stale, 0);  // R=1/W=1 on a hot key must produce stale reads
}

TEST(Cluster, ReadRepairConvergesReplicas) {
  sim::Simulation sim(44);
  auto cfg = small_config();
  cfg.read_repair_chance = 1.0;  // always repair the full replica set
  Cluster c(sim, cfg);
  std::optional<Version> written;
  c.client_write(0, 5, 64, resolve_count(1, 5),
                 [&](const WriteResult& w) { written = w.version; });
  sim.run();
  // One read at ONE triggers global repair of every replica.
  c.client_read(0, 5, resolve_count(1, 5), [](const ReadResult&) {});
  sim.run();
  ASSERT_TRUE(written.has_value());
  int holding = 0;
  for (const auto r : c.replicas_for(5)) {
    const auto v = c.node(r).store().read(5);
    if (v.has_value() && v->version == *written) ++holding;
  }
  EXPECT_EQ(holding, 5);
  EXPECT_GT(c.read_repairs_sent(), 0u);
}

TEST(Cluster, NetStatsAccountTraffic) {
  sim::Simulation sim(6);
  Cluster c(sim, small_config());
  c.client_write(0, 3, 1024, resolve_count(5, 5), [](const WriteResult&) {});
  sim.run();
  const auto& net = c.net_stats();
  EXPECT_GT(net.total_messages(), 5u);
  EXPECT_GT(net.total_bytes(), 5ull * 1024);
  // NTS rf 3/2 across two DCs: some replicas are remote from the coordinator.
  EXPECT_GT(net.cross_dc_bytes(), 0u);
}

TEST(Cluster, ReplicaOpsCounted) {
  sim::Simulation sim(7);
  Cluster c(sim, small_config());
  c.client_write(0, 3, 64, resolve_count(1, 5), [](const WriteResult&) {});
  sim.run();
  EXPECT_EQ(c.replica_ops(), 5u);  // all five replicas applied the mutation
  c.client_read(0, 3, resolve_count(2, 5), [](const ReadResult&) {});
  sim.run();
  EXPECT_EQ(c.replica_ops(), 7u);  // +1 data read, +1 digest
}

TEST(Cluster, EachQuorumWrite) {
  sim::Simulation sim(8);
  Cluster c(sim, small_config());
  ReplicaRequirement req = resolve(Level::kEachQuorum, 5, 3);
  bool ok = false;
  c.client_write(0, 11, 64, req, [&](const WriteResult& w) { ok = w.ok; });
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(Cluster, LocalQuorumFasterThanGlobalAll) {
  auto run_one = [](ReplicaRequirement req) {
    sim::Simulation sim(9);
    auto cfg = small_config();
    cfg.latency = net::TieredLatencyModel::grid5000_two_sites();
    Cluster c(sim, cfg);
    SimTime done = 0;
    c.client_write(0, 13, 64, req, [&](const WriteResult&) { done = sim.now(); });
    sim.run();
    return done;
  };
  const auto local = run_one(resolve(Level::kLocalQuorum, 5, 3));
  const auto all = run_one(resolve(Level::kAll, 5, 3));
  EXPECT_LT(local, all);  // LOCAL_QUORUM avoids the WAN wait
}

TEST(Cluster, RejectsRfBeyondNodes) {
  sim::Simulation sim(10);
  ClusterConfig cfg = small_config();
  cfg.node_count = 3;
  cfg.rf = 5;
  EXPECT_THROW(Cluster(sim, cfg), harmony::CheckError);
}

// Determinism regression: a full mixed read/write workload with mid-run
// failure injection must be bit-reproducible from the seed (same event count,
// same final clock, same byte/staleness accounting).
struct DeterminismFingerprint {
  std::uint64_t events = 0;
  SimTime final_now = 0;
  std::uint64_t replica_ops = 0;
  std::uint64_t stale = 0;
  std::uint64_t ok = 0;
  std::uint64_t repairs = 0;

  bool operator==(const DeterminismFingerprint&) const = default;
};

DeterminismFingerprint deterministic_workload(std::uint64_t seed) {
  sim::Simulation sim(seed);
  Cluster c(sim, small_config());
  c.preload_range(200, 256);
  Rng rng = sim.fork_rng(0x50AD);
  DeterminismFingerprint fp;
  for (int i = 0; i < 400; ++i) {
    const Key key = rng.uniform_u64(200);
    const net::DcId dc = static_cast<net::DcId>(rng.uniform_u64(2));
    if (rng.chance(0.5)) {
      c.client_write(dc, key, 128, resolve_count(1, 5),
                     [&fp](const WriteResult& w) { fp.ok += w.ok ? 1 : 0; });
    } else {
      c.client_read(dc, key, resolve_count(2, 5), [&fp](const ReadResult& r) {
        fp.ok += r.ok ? 1 : 0;
        fp.stale += r.stale ? 1 : 0;
      });
    }
    if (i == 150) c.kill_node(3);
    if (i == 300) c.revive_node(3);
    sim.run();
  }
  fp.events = sim.events_processed();
  fp.final_now = sim.now();
  fp.replica_ops = c.replica_ops();
  fp.repairs = c.read_repairs_sent();
  return fp;
}

TEST(Cluster, DeterministicAcrossRuns) {
  const auto a = deterministic_workload(77);
  const auto b = deterministic_workload(77);
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.events, 1000u);
  EXPECT_GT(a.ok, 300u);

  const auto c = deterministic_workload(78);
  EXPECT_FALSE(a == c);  // different seed, different trajectory
}

TEST(Cluster, ReplicaCacheSurvivesMembershipChanges) {
  sim::Simulation sim(5);
  Cluster c(sim, small_config());
  const ReplicaList before = c.replicas_for(42);
  c.kill_node(before[0]);
  const ReplicaList during = c.replicas_for(42);
  c.revive_node(before[0]);
  const ReplicaList after = c.replicas_for(42);
  // Placement is independent of liveness; the cache must not serve junk
  // across the kill/revive invalidations.
  EXPECT_TRUE(before == during);
  EXPECT_TRUE(before == after);
}

TEST(Cluster, ObserverSeesPropagation) {
  struct Probe : ClusterObserver {
    int propagated = 0;
    std::size_t delays_seen = 0;
    void on_write_propagated(Key, SimTime, const DelayList& d) override {
      ++propagated;
      delays_seen = d.size();
    }
  };
  sim::Simulation sim(11);
  Cluster c(sim, small_config());
  Probe probe;
  c.set_observer(&probe);
  c.client_write(0, 2, 64, resolve_count(1, 5), [](const WriteResult&) {});
  sim.run();
  EXPECT_EQ(probe.propagated, 1);
  EXPECT_EQ(probe.delays_seen, 5u);
}

}  // namespace
}  // namespace harmony::cluster
