// Global operator new/delete replacements backing tests/alloc_guard.h.
//
// Defined once per test binary (the one-definition rule forbids a second
// replacement, which is why the counter lives here and not in each test's
// translation unit).
#include "alloc_guard.h"

#include <cstddef>
#include <cstdlib>
#include <new>

namespace harmony::testing {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace harmony::testing

namespace {
void* counted_alloc(std::size_t size, std::size_t align) {
  harmony::testing::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
