// Datacenter-local consistency levels (LOCAL_ONE / LOCAL_QUORUM /
// EACH_QUORUM) — the "geographical policies" of §III-C — exercised against
// the cluster, including partition-like failure patterns.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.h"
#include "core/behavior.h"
#include "core/static_policy.h"
#include "workload/runner.h"

namespace harmony::cluster {
namespace {

ClusterConfig two_dc_config() {
  ClusterConfig cfg;
  cfg.node_count = 10;
  cfg.dc_count = 2;
  cfg.rf = 5;  // NTS 3/2
  cfg.latency = net::TieredLatencyModel::grid5000_two_sites();
  cfg.request_timeout = 300 * kMillisecond;
  return cfg;
}

TEST(LocalLevels, LocalQuorumSurvivesRemoteDcLoss) {
  sim::Simulation sim(1);
  Cluster c(sim, two_dc_config());
  c.preload_range(50, 64);
  for (const auto n : c.topology().nodes_in_dc(1)) c.kill_node(n);

  std::optional<ReadResult> local;
  c.client_read(0, 7, resolve(Level::kLocalQuorum, 5, 3),
                [&](const ReadResult& r) { local = r; });
  sim.run();
  ASSERT_TRUE(local.has_value());
  EXPECT_TRUE(local->ok);  // dc0's 3 replicas can still form a local quorum
}

TEST(LocalLevels, GlobalAllFailsWhenRemoteDcDown) {
  sim::Simulation sim(2);
  Cluster c(sim, two_dc_config());
  c.preload_range(50, 64);
  for (const auto n : c.topology().nodes_in_dc(1)) c.kill_node(n);

  std::optional<ReadResult> global;
  c.client_read(0, 7, resolve(Level::kAll, 5, 3),
                [&](const ReadResult& r) { global = r; });
  sim.run();
  ASSERT_TRUE(global.has_value());
  EXPECT_FALSE(global->ok);  // needs dc1's replicas
}

TEST(LocalLevels, EachQuorumFailsWhenOneDcLacksQuorum) {
  sim::Simulation sim(3);
  Cluster c(sim, two_dc_config());
  // dc1 has 2 replicas per key; kill enough dc1 nodes that no key keeps 2.
  const auto& dc1 = c.topology().nodes_in_dc(1);
  for (std::size_t i = 0; i + 1 < dc1.size(); ++i) c.kill_node(dc1[i]);

  bool ok = true;
  c.client_write(0, 7, 64, resolve(Level::kEachQuorum, 5, 3),
                 [&](const WriteResult& w) { ok = w.ok; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_GE(c.unavailable(), 1u);
}

TEST(LocalLevels, EachQuorumWriteReachesBothDcs) {
  sim::Simulation sim(4);
  Cluster c(sim, two_dc_config());
  std::optional<Version> v;
  c.client_write(0, 9, 64, resolve(Level::kEachQuorum, 5, 3),
                 [&](const WriteResult& w) {
                   ASSERT_TRUE(w.ok);
                   v = w.version;
                 });
  sim.run();
  ASSERT_TRUE(v.has_value());
  int dc0_holding = 0, dc1_holding = 0;
  for (const auto r : c.replicas_for(9)) {
    const auto stored = c.node(r).store().read(9);
    if (stored.has_value() && stored->version == *v) {
      (c.topology().dc_of(r) == 0 ? dc0_holding : dc1_holding)++;
    }
  }
  EXPECT_GE(dc0_holding, 2);  // quorum of 3
  EXPECT_GE(dc1_holding, 2);  // quorum of 2
}

TEST(LocalLevels, LocalOneFasterThanGlobalQuorumForRemoteClients) {
  auto time_read = [](ReplicaRequirement req, std::uint64_t seed) {
    sim::Simulation sim(seed);
    Cluster c(sim, two_dc_config());
    c.preload_range(50, 64);
    SimTime done = 0;
    // dc1 clients have only 2 local replicas: global quorum (3) goes remote.
    c.client_read(1, 7, req, [&](const ReadResult& r) {
      ASSERT_TRUE(r.ok);
      done = sim.now();
    });
    sim.run();
    return done;
  };
  const auto local = time_read(resolve(Level::kLocalOne, 5, 2), 5);
  const auto global = time_read(resolve(Level::kQuorum, 5, 2), 5);
  EXPECT_LT(local, global);
}

TEST(LocalLevels, GeoPolicyRunsEndToEnd) {
  workload::RunConfig cfg;
  cfg.cluster = two_dc_config();
  cfg.workload = workload::WorkloadSpec::ycsb_b();
  cfg.workload.op_count = 8000;
  cfg.workload.record_count = 500;
  cfg.workload.clients_per_dc = 8;
  cfg.policy = core::static_level(Level::kLocalQuorum, Level::kLocalQuorum);
  cfg.warmup = 300 * kMillisecond;
  cfg.seed = 17;
  const auto r = workload::run_experiment(cfg);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.ops, 4000u);
  EXPECT_EQ(r.policy_name, "static-LOCAL_QUORUM");
}

TEST(LocalLevels, GenericRulesIncludeGeoPolicy) {
  bool found = false;
  for (const auto& rule : core::generic_rules()) {
    if (rule.label.find("local-quorum") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace harmony::cluster
