#include "monitor/monitor.h"

#include <gtest/gtest.h>

namespace harmony::monitor {
namespace {

cluster::ClusterConfig test_cluster_config() {
  cluster::ClusterConfig cfg;
  cfg.node_count = 10;
  cfg.dc_count = 2;
  cfg.rf = 5;
  return cfg;
}

TEST(Monitor, RatesTrackIssuedOps) {
  Monitor m;
  sim::Simulation sim(1);
  cluster::Cluster c(sim, test_cluster_config());
  m.attach(c, 0);
  // 200 reads/s and 100 writes/s for 5 seconds.
  for (int i = 0; i < 1000; ++i) m.record_read_issued(i * 5 * kMillisecond, i);
  for (int i = 0; i < 500; ++i) m.record_write_issued(i * 10 * kMillisecond, i, 100);
  const auto s = m.snapshot(5 * kSecond);
  EXPECT_NEAR(s.read_rate, 200.0, 20.0);
  EXPECT_NEAR(s.write_rate, 100.0, 10.0);
  EXPECT_EQ(s.rf, 5);
  EXPECT_EQ(s.local_rf, 3);  // NTS split 3/2, client homed in dc0
}

TEST(Monitor, PropagationProfileSortedAndSized) {
  Monitor m;
  sim::Simulation sim(2);
  cluster::Cluster c(sim, test_cluster_config());
  m.attach(c, 0);
  m.on_write_propagated(1, 0, {5000, 800, 12000, 300, 9000});
  m.on_write_propagated(2, 20000, {4000, 900, 11000, 350, 8000});
  const auto s = m.snapshot(50000);
  ASSERT_EQ(s.prop_delays_us.size(), 5u);
  for (std::size_t i = 1; i < s.prop_delays_us.size(); ++i) {
    EXPECT_GE(s.prop_delays_us[i], s.prop_delays_us[i - 1]);
  }
  EXPECT_NEAR(s.t_first_us, 325.0, 50.0);   // mean of min delays
  EXPECT_NEAR(s.window_us(), 11500.0, 600.0);  // mean of max delays
  EXPECT_EQ(m.writes_observed(), 2u);
}

TEST(Monitor, PartialPropagationAlignsLowOrderStats) {
  Monitor m;
  sim::Simulation sim(3);
  cluster::Cluster c(sim, test_cluster_config());
  m.attach(c, 0);
  m.on_write_propagated(1, 0, {100, 200, 300});  // lost replicas mid-flight
  const auto s = m.snapshot(1000);
  ASSERT_EQ(s.prop_delays_us.size(), 3u);
  EXPECT_NEAR(s.prop_delays_us.front(), 100.0, 1.0);
}

TEST(Monitor, RttSplitByLocality) {
  Monitor m;
  sim::Simulation sim(4);
  cluster::Cluster c(sim, test_cluster_config());
  m.attach(c, 0);
  for (int i = 0; i < 50; ++i) {
    m.on_replica_read_rtt(0, 500, false);
    m.on_replica_read_rtt(5, 9000, true);
  }
  const auto s = m.snapshot(1000);
  EXPECT_NEAR(s.replica_rtt_local_us, 500.0, 50.0);
  EXPECT_NEAR(s.replica_rtt_remote_us, 9000.0, 500.0);
}

TEST(Monitor, EstimatedReadLatencyMonotoneInK) {
  Monitor m;
  sim::Simulation sim(5);
  cluster::Cluster c(sim, test_cluster_config());
  m.attach(c, 0);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    m.on_replica_read_rtt(0, 400 + (i % 50), false);
    m.on_replica_read_rtt(5, 8000 + (i % 500), true);
  }
  const auto s = m.snapshot(1000);
  ASSERT_EQ(s.est_read_latency_by_k_us.size(), 5u);
  // k=1..3 are local (rf_local=3); k=4..5 add remote replicas -> big jump.
  EXPECT_LE(s.est_read_latency_by_k_us[0], s.est_read_latency_by_k_us[2] + 100);
  EXPECT_GT(s.est_read_latency_by_k_us[3], s.est_read_latency_by_k_us[2] * 4);
  EXPECT_GE(s.est_read_latency_by_k_us[4] + 500,
            s.est_read_latency_by_k_us[3]);
}

TEST(Monitor, BehaviorFeaturesResetPerSnapshot) {
  Monitor m;
  sim::Simulation sim(6);
  cluster::Cluster c(sim, test_cluster_config());
  m.attach(c, 0);
  for (int i = 0; i < 60; ++i) m.record_write_issued(i * 1000, /*key=*/7, 2048);
  for (int i = 0; i < 40; ++i) m.record_read_issued(60000 + i * 1000, 7);
  auto s1 = m.snapshot(100000);
  EXPECT_NEAR(s1.write_share, 0.6, 1e-9);
  EXPECT_NEAR(s1.mean_value_size, 2048.0, 1e-9);
  EXPECT_LT(s1.key_entropy, 0.5);  // single key: fully concentrated
  // Next snapshot window is empty.
  auto s2 = m.snapshot(200000);
  EXPECT_EQ(s2.write_share, 0.0);
  EXPECT_EQ(s2.mean_value_size, 0.0);
}

TEST(Monitor, EntropyDistinguishesSkew) {
  Monitor m1, m2;
  sim::Simulation sim(7);
  cluster::Cluster c(sim, test_cluster_config());
  m1.attach(c, 0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) m1.record_read_issued(i, rng.uniform_u64(100000));
  const auto uniform_state = m1.snapshot(1000);
  m2.attach(c, 0);
  for (int i = 0; i < 1000; ++i) m2.record_read_issued(i, i % 3);
  const auto skewed_state = m2.snapshot(1000);
  EXPECT_GT(uniform_state.key_entropy, skewed_state.key_entropy + 2.0);
}

TEST(Monitor, ClientLatencyEwmas) {
  Monitor m;
  sim::Simulation sim(8);
  cluster::Cluster c(sim, test_cluster_config());
  m.attach(c, 0);
  for (int i = 0; i < 100; ++i) {
    m.record_read_complete(i * 1000, 1500);
    m.record_write_complete(i * 1000, 2500);
  }
  const auto s = m.snapshot(100000);
  EXPECT_NEAR(s.read_latency_us, 1500.0, 10.0);
  EXPECT_NEAR(s.write_latency_us, 2500.0, 10.0);
}

}  // namespace
}  // namespace harmony::monitor
