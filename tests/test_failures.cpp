// Failure injection: dead replicas, unavailability, hinted handoff, recovery.
#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.h"

namespace harmony::cluster {
namespace {

ClusterConfig cfg_rf3() {
  ClusterConfig cfg;
  cfg.node_count = 8;
  cfg.dc_count = 2;
  cfg.rf = 3;
  cfg.latency = net::TieredLatencyModel::ec2_two_az();
  cfg.request_timeout = 200 * kMillisecond;
  return cfg;
}

TEST(Failures, WriteSucceedsWithOneReplicaDown) {
  sim::Simulation sim(1);
  Cluster c(sim, cfg_rf3());
  const auto replicas = c.replicas_for(5);
  c.kill_node(replicas[1]);
  bool ok = false;
  c.client_write(0, 5, 64, resolve_count(2, 3),
                 [&](const WriteResult& w) { ok = w.ok; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(c.alive_count(), 7u);
}

TEST(Failures, WriteUnavailableWhenTooManyDead) {
  sim::Simulation sim(2);
  Cluster c(sim, cfg_rf3());
  const auto replicas = c.replicas_for(5);
  c.kill_node(replicas[0]);
  c.kill_node(replicas[1]);
  bool ok = true;
  c.client_write(0, 5, 64, resolve_count(3, 3),
                 [&](const WriteResult& w) { ok = w.ok; });
  sim.run();
  EXPECT_FALSE(ok);
  EXPECT_GE(c.unavailable(), 1u);
}

TEST(Failures, ReadUnavailableWhenAllReplicasDead) {
  sim::Simulation sim(3);
  Cluster c(sim, cfg_rf3());
  c.preload_range(10, 64);
  for (const auto r : c.replicas_for(5)) c.kill_node(r);
  std::optional<ReadResult> result;
  c.client_read(0, 5, resolve_count(1, 3),
                [&](const ReadResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

TEST(Failures, ReadSkipsDeadReplicas) {
  sim::Simulation sim(4);
  Cluster c(sim, cfg_rf3());
  c.preload_range(10, 64);
  const auto replicas = c.replicas_for(5);
  c.kill_node(replicas[0]);
  std::optional<ReadResult> result;
  c.client_read(0, 5, resolve_count(2, 3),
                [&](const ReadResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_TRUE(result->found);
}

TEST(Failures, HintStoredForDeadReplicaAndReplayedOnRevival) {
  sim::Simulation sim(5);
  Cluster c(sim, cfg_rf3());
  const auto replicas = c.replicas_for(9);
  const auto dead = replicas[2];
  c.kill_node(dead);
  std::optional<Version> version;
  c.client_write(0, 9, 64, resolve_count(1, 3),
                 [&](const WriteResult& w) { version = w.version; });
  sim.run();
  ASSERT_TRUE(version.has_value());
  EXPECT_EQ(c.hints().pending(dead), 1u);
  EXPECT_FALSE(c.node(dead).store().read(9).has_value());

  c.revive_node(dead);
  sim.run();
  EXPECT_EQ(c.hints().pending(dead), 0u);
  const auto v = c.node(dead).store().read(9);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, *version);
}

TEST(Failures, HintsBatchAcrossKeys) {
  sim::Simulation sim(6);
  Cluster c(sim, cfg_rf3());
  // Find two keys sharing a replica, kill it, write both.
  const auto replicas = c.replicas_for(1);
  const auto dead = replicas[0];
  c.kill_node(dead);
  int writes_done = 0;
  for (Key k = 0; k < 50; ++k) {
    c.client_write(0, k, 32, resolve_count(1, 3),
                   [&](const WriteResult&) { ++writes_done; });
  }
  sim.run();
  EXPECT_EQ(writes_done, 50);
  EXPECT_GT(c.hints().pending(dead), 0u);
  c.revive_node(dead);
  sim.run();
  EXPECT_EQ(c.hints().pending(dead), 0u);
  EXPECT_GT(c.hints().replayed(), 0u);
}

TEST(Failures, CoordinatorAvoidsDeadNodes) {
  sim::Simulation sim(7);
  Cluster c(sim, cfg_rf3());
  c.preload_range(4, 64);
  // Kill every node in DC 0; clients homed there still get service via DC 1.
  for (const auto n : c.topology().nodes_in_dc(0)) c.kill_node(n);
  std::optional<ReadResult> result;
  c.client_read(0, 1, resolve_count(1, 3),
                [&](const ReadResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  // Key 1's replicas: NTS puts 2 in dc0 (dead) and 1 in dc1 -> readable.
  EXPECT_TRUE(result->ok);
}

TEST(Failures, RevivedNodeServesReads) {
  sim::Simulation sim(8);
  Cluster c(sim, cfg_rf3());
  c.preload_range(10, 64);
  const auto replicas = c.replicas_for(3);
  c.kill_node(replicas[0]);
  c.revive_node(replicas[0]);
  std::optional<ReadResult> result;
  c.client_read(0, 3, resolve_count(3, 3),
                [&](const ReadResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
}

TEST(Failures, DoubleKillAndReviveAreIdempotent) {
  sim::Simulation sim(9);
  Cluster c(sim, cfg_rf3());
  c.kill_node(0);
  c.kill_node(0);
  EXPECT_EQ(c.alive_count(), 7u);
  c.revive_node(0);
  c.revive_node(0);
  EXPECT_EQ(c.alive_count(), 8u);
}

}  // namespace
}  // namespace harmony::cluster
