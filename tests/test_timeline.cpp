#include "ml/timeline.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace harmony::ml {
namespace {

std::vector<AccessRecord> steady_stream(double ops_per_s, double write_share,
                                        SimDuration span, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AccessRecord> out;
  const double gap = 1e6 / ops_per_s;
  SimTime t = 0;
  while (t < span) {
    t += static_cast<SimTime>(rng.exponential(gap)) + 1;
    AccessRecord r;
    r.time = t;
    r.is_write = rng.chance(write_share);
    r.key = rng.uniform_u64(10000);
    r.value_size = 1024;
    out.push_back(r);
  }
  return out;
}

TEST(Timeline, WindowCountMatchesSpan) {
  const auto records = steady_stream(500, 0.3, 60 * kSecond, 1);
  TimelineOptions opt;
  opt.window = 10 * kSecond;
  const auto t = build_timeline(records, opt);
  EXPECT_NEAR(static_cast<double>(t.windows.size()), 6.0, 1.0);
  for (const auto& w : t.windows) {
    EXPECT_EQ(w.features.size(), kTimelineFeatureCount);
  }
}

TEST(Timeline, RatesAndShares) {
  const auto records = steady_stream(1000, 0.4, 50 * kSecond, 2);
  TimelineOptions opt;
  opt.window = 10 * kSecond;
  const auto t = build_timeline(records, opt);
  ASSERT_GE(t.windows.size(), 4u);
  for (const auto& w : t.windows) {
    EXPECT_NEAR(w.features[0] + w.features[1], 1000.0, 150.0);  // total rate
    EXPECT_NEAR(w.features[2], 0.4, 0.08);                      // write share
    EXPECT_NEAR(w.features[5], 1024.0, 1e-9);                   // value size
  }
}

TEST(Timeline, EntropyReflectsKeySkew) {
  Rng rng(3);
  std::vector<AccessRecord> hot, uniform;
  for (int i = 0; i < 5000; ++i) {
    AccessRecord r;
    r.time = i * 1000;
    r.key = i % 2;  // two keys only
    hot.push_back(r);
    r.key = rng.uniform_u64(1000000);
    uniform.push_back(r);
  }
  TimelineOptions opt;
  opt.window = 5 * kSecond;
  const auto th = build_timeline(hot, opt);
  const auto tu = build_timeline(uniform, opt);
  ASSERT_FALSE(th.windows.empty());
  ASSERT_FALSE(tu.windows.empty());
  EXPECT_LT(th.windows[0].features[3], 1.5);
  EXPECT_GT(tu.windows[0].features[3], 6.0);
}

TEST(Timeline, BurstinessOfPoissonNearOne) {
  const auto records = steady_stream(2000, 0.5, 20 * kSecond, 4);
  TimelineOptions opt;
  opt.window = 10 * kSecond;
  const auto t = build_timeline(records, opt);
  ASSERT_FALSE(t.windows.empty());
  EXPECT_NEAR(t.windows[0].features[4], 1.0, 0.25);
}

TEST(Timeline, SparseWindowsDropped) {
  std::vector<AccessRecord> records;
  // 3 ops in the first window, 100 in the second.
  for (int i = 0; i < 3; ++i) records.push_back({i * 100, false, 0, 10});
  for (int i = 0; i < 100; ++i) {
    records.push_back({10 * kSecond + i * 1000, false, 0, 10});
  }
  TimelineOptions opt;
  opt.window = 10 * kSecond;
  opt.min_ops_per_window = 5;
  const auto t = build_timeline(records, opt);
  ASSERT_EQ(t.windows.size(), 1u);
  EXPECT_EQ(t.windows[0].ops, 100u);
}

TEST(Timeline, GapsInStreamSkipEmptyWindows) {
  std::vector<AccessRecord> records;
  for (int i = 0; i < 50; ++i) records.push_back({i * 1000, false, 0, 10});
  for (int i = 0; i < 50; ++i) {
    records.push_back({10 * kMinute + i * 1000, true, 1, 10});
  }
  TimelineOptions opt;
  opt.window = 10 * kSecond;
  const auto t = build_timeline(records, opt);
  EXPECT_EQ(t.windows.size(), 2u);
  EXPECT_LT(t.windows[0].features[2], 0.01);
  EXPECT_GT(t.windows[1].features[2], 0.99);
}

TEST(Timeline, UnsortedRecordsThrow) {
  std::vector<AccessRecord> records = {{1000, false, 0, 1}, {500, false, 0, 1}};
  EXPECT_THROW(build_timeline(records, {}), CheckError);
}

TEST(Timeline, MatrixShape) {
  const auto records = steady_stream(500, 0.2, 30 * kSecond, 5);
  const auto t = build_timeline(records, {});
  const auto m = t.matrix();
  EXPECT_EQ(m.size(), t.windows.size());
}

TEST(Timeline, FeatureNamesAligned) {
  EXPECT_EQ(timeline_feature_names().size(), kTimelineFeatureCount);
  EXPECT_EQ(timeline_feature_names()[3], "key_entropy");
}

}  // namespace
}  // namespace harmony::ml
