#include "cost/energy.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace harmony::cost {
namespace {

TEST(Energy, IdleFleetDrawsIdlePower) {
  PowerModel p;
  const double watts = p.average_watts(10, kHour, 0, 0);
  EXPECT_NEAR(watts, 10 * p.idle_watts, 1e-9);
}

TEST(Energy, FullyBusyFleetDrawsBusyPower) {
  PowerModel p;
  const double watts = p.average_watts(10, kHour, 10 * kHour, 0);
  EXPECT_NEAR(watts, 10 * p.busy_watts, 1e-9);
}

TEST(Energy, UtilizationInterpolatesLinearly) {
  PowerModel p;
  const double half = p.average_watts(4, kHour, 2 * kHour, 0);
  EXPECT_NEAR(half, 4 * (p.idle_watts + 0.5 * (p.busy_watts - p.idle_watts)),
              1e-9);
}

TEST(Energy, NetworkAddsNicPower) {
  PowerModel p;
  const double quiet = p.average_watts(1, kSecond, 0, 0);
  // 1 GB over 1 second = 8 Gbit/s.
  const double busy_nic = p.average_watts(1, kSecond, 0, 1e9);
  EXPECT_NEAR(busy_nic - quiet, 8.0 * p.nic_watts_per_gbps, 1e-6);
}

TEST(Energy, KwhMatchesWattsTimesHours) {
  PowerModel p;
  const double kwh = p.energy_kwh(10, 2 * kHour, 0, 0);
  EXPECT_NEAR(kwh, 10 * p.idle_watts * 2.0 / 1000.0, 1e-9);
}

TEST(Energy, UtilizationClamped) {
  PowerModel p;
  // busy_time exceeding wall*nodes clamps at 100%.
  const double watts = p.average_watts(1, kSecond, 10 * kSecond, 0);
  EXPECT_NEAR(watts, p.busy_watts, 1e-9);
}

TEST(Energy, RejectsDegenerateInputs) {
  PowerModel p;
  EXPECT_THROW(p.average_watts(0, kSecond, 0, 0), harmony::CheckError);
  EXPECT_THROW(p.average_watts(1, 0, 0, 0), harmony::CheckError);
}

TEST(Energy, MoreWorkMoreEnergy) {
  PowerModel p;
  const double idle = p.energy_kwh(5, kHour, 0, 0);
  const double busy = p.energy_kwh(5, kHour, 3 * kHour, 5e9);
  EXPECT_GT(busy, idle);
}

}  // namespace
}  // namespace harmony::cost
