// Suppression fixture: hot-path allocation constructs carrying justified
// allows — the linter must report nothing here.
#include <memory>
#include <string>

// lint: allow(hot-path-alloc): fixture demonstrating a justified
// suppression of a cold-path string.
std::string g_label;

int* make_buffer() {
  // lint: allow(hot-path-alloc): warm-up growth fixture; freed by caller.
  return new int[8];
}
