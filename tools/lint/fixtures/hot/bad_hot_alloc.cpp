// Known-bad fixture: every steady-state allocation construct the
// hot-path-alloc rule must catch in a manifest-listed hot file. Placement
// new is exempt (it is how the pools construct in place).
#include <map>
#include <memory>
#include <new>
#include <string>

int* heap_int() {
  return new int(42);  // EXPECT-LINT: hot-path-alloc
}

std::unique_ptr<int> smart() {
  return std::make_unique<int>(1);  // EXPECT-LINT: hot-path-alloc
}

std::string g_name;          // EXPECT-LINT: hot-path-alloc
std::map<int, int> g_index;  // EXPECT-LINT: hot-path-alloc

alignas(int) char g_buf[sizeof(int)];
int* placed() {
  return new (g_buf) int(3);  // placement new: must NOT be flagged
}
