// Fixture for the allow meta-rules: a suppression without a justification
// and a suppression that no longer matches anything are both findings, so
// stale or lazy allows cannot linger in the tree.

int* unjustified() {
  // EXPECT-LINT+1: allow-needs-justification
  // lint: allow(hot-path-alloc)
  return new int(1);
}

// lint: allow(hot-path-alloc): stale suppression that matches nothing now.
int plain_add(int a, int b) { return a + b; }  // EXPECT-LINT: unused-allow
