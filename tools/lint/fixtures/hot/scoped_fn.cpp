// Fixture for function-scoped no-alloc enforcement: the manifest lists only
// hot_fn() for this file, so identical constructs outside it are legal.
#include <string>

std::string cold_helper() {
  return std::string("setup/reporting code may allocate freely");
}

void hot_fn() {
  int* p = new int(7);  // EXPECT-LINT: hot-path-alloc
  delete p;
}
