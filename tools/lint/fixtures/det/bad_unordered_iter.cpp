// Known-bad fixture: iteration over unordered containers in a
// determinism-scoped module. Declaring the containers is legal (the
// hot-path-alloc rule polices that separately); *iterating* them is what
// leaks implementation-defined bucket order into schedules and output.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

std::unordered_set<std::uint64_t> g_dirty;
std::unordered_map<int, int> g_hints;

std::uint64_t sum_keys() {
  std::uint64_t n = 0;
  for (const auto k : g_dirty) n += k;  // EXPECT-LINT: determinism-unordered-iter
  return n;
}

int first_value() {
  auto it = g_hints.begin();  // EXPECT-LINT: determinism-unordered-iter
  return it == g_hints.end() ? 0 : it->second;
}
