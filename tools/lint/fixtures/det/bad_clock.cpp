// Known-bad fixture: every wall-clock / entropy source the
// determinism-entropy rule must catch. Never compiled — consumed by
// tools/lint/test_lint.py, which asserts one finding per EXPECT-LINT marker
// and none anywhere else.
#include <chrono>  // EXPECT-LINT: determinism-entropy
#include <cstdlib>
#include <random>

long wall_nanos() {
  auto t = std::chrono::steady_clock::now();  // EXPECT-LINT: determinism-entropy
  return t.time_since_epoch().count();
}

int entropy() {
  std::random_device rd;  // EXPECT-LINT: determinism-entropy
  return static_cast<int>(rd()) + rand();  // EXPECT-LINT: determinism-entropy
}

const char* env_knob() {
  return getenv("HARMONY_SEED");  // EXPECT-LINT: determinism-entropy
}

long unix_time() {
  return time(nullptr);  // EXPECT-LINT: determinism-entropy
}
