// Suppression fixture: the same determinism violations as the bad files,
// each carrying a justified allow — the linter must report nothing here.
#include <cstdlib>
#include <unordered_set>

std::unordered_set<int> g_keys;

int checked_entropy() {
  // lint: allow(determinism-entropy): fixture demonstrating a justified
  // suppression; this file is not part of any simulation build.
  return rand();
}

int key_sum() {
  int n = 0;
  // lint: allow(determinism-unordered-iter): order-insensitive sum; no
  // iteration order can leak into output.
  for (const int k : g_keys) n += k;
  return n;
}
