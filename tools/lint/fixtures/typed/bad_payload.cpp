// Known-bad fixture for the typed-lane-shape rule: a payload carrying a
// non-POD member, payloads missing their layout asserts, and a missing
// header-offset assert. Mirrors src/sim/event.h's shape; never compiled.
#include <cstdint>
#include <string>
#include <type_traits>

namespace fixture {

struct TypedEvent {
  std::uint8_t kind;
  std::uint8_t flag;
  std::uint16_t node;
  std::uint32_t aux;
  void* target;

  union Payload {  // EXPECT-LINT: typed-lane-shape (missing offsetof assert)
    struct {
      std::uint64_t key;
    } kv;
    struct {
      std::string label;  // EXPECT-LINT: typed-lane-shape
    } bad;  // EXPECT-LINT: typed-lane-shape (no layout assert)
    struct {
      std::uint64_t a;
      std::uint64_t b;
    } wide;  // EXPECT-LINT: typed-lane-shape (no layout assert)
    std::uint64_t raw[4];
  } u;
};

static_assert(sizeof(TypedEvent) == 48, "event size");
static_assert(std::is_trivially_copyable_v<TypedEvent>);
static_assert(sizeof(TypedEvent::Payload::kv) <= 32, "kv payload");

}  // namespace fixture
