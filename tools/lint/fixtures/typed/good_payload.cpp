// Good fixture for the typed-lane-shape rule: every payload has its layout
// assert, the event/header asserts are present, and the one deliberate
// non-POD member carries a justified suppression — zero findings expected.
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace fixture {

struct TypedEvent {
  std::uint8_t kind;
  std::uint8_t flag;
  std::uint16_t node;
  std::uint32_t aux;
  void* target;

  union Payload {
    struct {
      std::uint64_t key;
    } kv;
    struct {
      // lint: allow(typed-lane-shape): fixture demonstrating a justified
      // suppression of a non-POD payload member.
      std::string label;
    } text;
    std::uint64_t raw[4];
  } u;
};

static_assert(sizeof(TypedEvent) == 48, "event size");
static_assert(offsetof(TypedEvent, u) == 16, "header size");
static_assert(std::is_trivially_copyable_v<TypedEvent>);
static_assert(sizeof(TypedEvent::Payload::kv) <= 32, "kv payload");
static_assert(sizeof(TypedEvent::Payload::text) <= 32, "text payload");

}  // namespace fixture
