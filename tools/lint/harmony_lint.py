#!/usr/bin/env python3
"""harmony_lint — static checker for the repo's load-bearing invariants.

The simulator's correctness contract rests on three invariants that are
otherwise only enforced *dynamically* (diff harness, alloc_guard, byte-diffed
fixed-seed outputs):

  determinism-entropy       src/sim, src/cluster, src/workload must not read
                            wall clocks or entropy (rand, random_device,
                            std::chrono clocks, getenv, ...): every run is a
                            pure function of (config, seed).
  determinism-unordered-iter iteration over std::unordered_map/set in those
                            modules is banned — bucket order is
                            implementation-defined, so it silently feeds
                            stdlib-dependent order into schedules and output.
  hot-path-alloc            manifest-listed hot files/functions (the
                            schedule→route→commit→judge path) must not
                            introduce steady-state heap traffic: no non-
                            placement `new`, make_unique/make_shared,
                            std::function, std::string, or node containers.
  typed-lane-shape          every TypedEvent payload member stays trivially
                            copyable, fits the payload union, and keeps its
                            layout static_assert alongside the definition.

Rules and scopes are declared in a checked-in manifest (invariants.toml).
False positives are whitelisted in-line:

    ... flagged code ...  // lint: allow(<rule>): <why this is safe>

The justification is mandatory; a bare allow() is itself a finding, and an
allow that stops matching anything is reported as unused-allow so stale
suppressions cannot linger.

Engines: with python libclang bindings available (`--engine clang`), rules
run on the real AST of every TU in compile_commands.json; everywhere else a
token-level engine (comments/strings stripped, identifier-exact matching)
produces the same diagnostics — CI pins `--engine token` so results never
depend on host packages. Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------- TOML

def load_manifest(path: Path) -> dict:
    try:
        import tomllib  # Python >= 3.11
        with open(path, "rb") as f:
            return tomllib.load(f)
    except ModuleNotFoundError:
        return _mini_toml(path.read_text())


def _mini_toml(text: str) -> dict:
    """Tiny TOML subset parser (tables, arrays-of-tables, str/int/bool/list
    values) so the linter still runs on pythons without tomllib."""
    root: dict = {}
    table = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = re.match(r"^\[\[([A-Za-z0-9_.-]+)\]\]$", line)
        if m:
            parent = root
            parts = m.group(1).split(".")
            for p in parts[:-1]:
                parent = parent.setdefault(p, {})
            table = {}
            parent.setdefault(parts[-1], []).append(table)
            continue
        m = re.match(r"^\[([A-Za-z0-9_.-]+)\]$", line)
        if m:
            table = root
            for p in m.group(1).split("."):
                table = table.setdefault(p, {})
            continue
        m = re.match(r"^([A-Za-z0-9_-]+)\s*=\s*(.+?)\s*(?:#.*)?$", line)
        if m:
            table[m.group(1)] = _mini_toml_value(m.group(2))
    return root


def _mini_toml_value(v: str):
    v = v.strip()
    if v.startswith("["):
        inner = v.strip()[1:-1]
        items = [x.strip() for x in inner.split(",") if x.strip()]
        return [_mini_toml_value(x) for x in items]
    if v.startswith('"') or v.startswith("'"):
        return v[1:-1]
    if v in ("true", "false"):
        return v == "true"
    return int(v)


# ----------------------------------------------------------- source scanning

ALLOW_RE = re.compile(
    r"lint:\s*allow\(\s*([A-Za-z0-9_,\- ]+?)\s*\)\s*(?::\s*(.*?)\s*)?$")

TOKEN_RE = re.compile(r"[A-Za-z_]\w*|::|->|[0-9][\w.]*|\S")


class Allow:
    def __init__(self, rules, line, justified):
        self.rules = rules          # set of rule names
        self.line = line            # line the allow comment sits on
        self.justified = justified  # has a non-trivial ": why" tail
        self.used = False


class Diagnostic:
    def __init__(self, path, line, rule, msg):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def render(self, root: Path) -> str:
        try:
            rel = self.path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.msg}"


class SourceFile:
    """One scanned file: comment/string-stripped text, token stream with line
    numbers, and the lint-allow suppressions found in its comments."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.rel = path.resolve().relative_to(root.resolve()).as_posix()
        text = path.read_text(errors="replace")
        self.clean, comments = _strip(text)
        self.lines = text.splitlines()
        self.allows: list[Allow] = []
        self.malformed: list[int] = []
        code_lines = {
            i + 1 for i, l in enumerate(self.clean.splitlines()) if l.strip()
        }
        for line_no, comment, standalone in comments:
            m = ALLOW_RE.search(comment)
            if not m:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            justification = (m.group(2) or "").strip()
            target = line_no
            if standalone:  # comment-only line: suppresses the next code line
                target = min((l for l in code_lines if l > line_no),
                             default=line_no)
            self.allows.append(Allow(rules, target, len(justification) >= 8))
            if len(justification) < 8:
                self.malformed.append(line_no)
        self.tokens: list[tuple[str, int]] = []
        for i, line in enumerate(self.clean.splitlines()):
            for m in TOKEN_RE.finditer(line):
                self.tokens.append((m.group(0), i + 1))

    def suppressed(self, rule: str, line: int) -> bool:
        for a in self.allows:
            if a.line == line and (rule in a.rules):
                a.used = True
                return True
        return False


def _strip(text: str):
    """Blank out comments and string/char literals, preserving line structure.
    Returns (clean_text, [(line_no, comment_text, standalone)])."""
    out = []
    comments = []
    i, n = 0, len(text)
    line = 1
    line_has_code = False
    while i < n:
        c = text[i]
        if c == "\n":
            out.append(c)
            line += 1
            line_has_code = False
            i += 1
        elif text.startswith("//", i):
            end = text.find("\n", i)
            end = n if end == -1 else end
            comments.append((line, text[i + 2:end], not line_has_code))
            out.append(" " * (end - i))
            i = end
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            chunk = text[i:end]
            comments.append((line, chunk.strip("/*").strip(), not line_has_code))
            out.append(re.sub(r"[^\n]", " ", chunk))
            line += chunk.count("\n")
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            # Raw string literal R"delim(...)delim"
            if quote == '"' and i > 0 and text[i - 1] == "R":
                m = re.match(r'R"([^(]*)\(', text[i - 1:])
                if m:
                    closer = f'){m.group(1)}"'
                    j = text.find(closer, i)
                    j = n if j == -1 else j + len(closer)
                    chunk = text[i:j]
                    out.append(re.sub(r"[^\n]", " ", chunk))
                    line += chunk.count("\n")
                    i = j
                    line_has_code = True
                    continue
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else c)
            i = j
            line_has_code = True
        else:
            out.append(c)
            if not c.isspace():
                line_has_code = True
            i += 1
    return "".join(out), comments


# ------------------------------------------------------------- token engine

NODE_CONTAINERS = ("unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset")


def _qualified_parts(entry: str) -> list[str]:
    return [p for p in entry.split("::") if p]


def _match_qualified(tokens, i, parts) -> bool:
    """tokens[i:] spells parts[0] :: parts[1] :: ..."""
    for k, part in enumerate(parts):
        idx = i + 2 * k
        if idx >= len(tokens) or tokens[idx][0] != part:
            return False
        if k + 1 < len(parts):
            sep = i + 2 * k + 1
            if sep >= len(tokens) or tokens[sep][0] != "::":
                return False
    return True


class TokenEngine:
    """Identifier-exact scanning over comment/string-stripped sources."""

    def __init__(self, manifest, root):
        self.manifest = manifest
        self.root = root
        self.diags: list[Diagnostic] = []

    def report(self, sf, line, rule, msg):
        if not sf.suppressed(rule, line):
            self.diags.append(Diagnostic(sf.path, line, rule, msg))

    # ---- determinism ------------------------------------------------------

    def unordered_decl_names(self, files: list[SourceFile]) -> set[str]:
        names = set()
        for sf in files:
            toks = sf.tokens
            for i, (t, _) in enumerate(toks):
                if t not in NODE_CONTAINERS:
                    continue
                j = i + 1
                if j < len(toks) and toks[j][0] == "<":
                    depth = 0
                    while j < len(toks):
                        if toks[j][0] == "<":
                            depth += 1
                        elif toks[j][0] == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    j += 1
                while j < len(toks) and toks[j][0] in ("&", "*", "const"):
                    j += 1
                if j < len(toks) and re.fullmatch(r"[A-Za-z_]\w*", toks[j][0]):
                    names.add(toks[j][0])
        return names

    def check_determinism(self, files: list[SourceFile]):
        det = self.manifest.get("determinism", {})
        banned_calls = set(det.get("banned_calls", []))
        banned_ids = set(det.get("banned_identifiers", []))
        banned_ns = set(det.get("banned_namespaces", []))
        unordered_names = self.unordered_decl_names(files)
        for sf in files:
            toks = sf.tokens
            for i, (t, line) in enumerate(toks):
                prev = toks[i - 1][0] if i else ""
                nxt = toks[i + 1][0] if i + 1 < len(toks) else ""
                if t in banned_ids:
                    self.report(sf, line, "determinism-entropy",
                                f"'{t}' is a nondeterminism source; draw from "
                                "the simulation's seeded Rng instead")
                elif t in banned_ns and prev == "::" and i >= 2 \
                        and toks[i - 2][0] == "std":
                    self.report(sf, line, "determinism-entropy",
                                f"std::{t} is banned here: simulated time "
                                "comes from Simulation::now(), never a wall "
                                "clock")
                elif t in banned_ns and prev == "<" and nxt == ">":
                    self.report(sf, line, "determinism-entropy",
                                f"#include <{t}> in a determinism-critical "
                                "module")
                elif t in banned_calls and nxt == "(" \
                        and prev not in (".", "->"):
                    self.report(sf, line, "determinism-entropy",
                                f"call to '{t}()' is a wall-clock/entropy "
                                "source; runs must be pure functions of "
                                "(config, seed)")
            self._check_unordered_iter(sf, unordered_names)

    def _check_unordered_iter(self, sf, names):
        toks = sf.tokens
        for i, (t, line) in enumerate(toks):
            if t == "for" and i + 1 < len(toks) and toks[i + 1][0] == "(":
                depth = 0
                colon = None
                j = i + 1
                while j < len(toks):
                    tj = toks[j][0]
                    if tj == "(":
                        depth += 1
                    elif tj == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif tj == ":" and depth == 1 and colon is None \
                            and (j < 1 or toks[j - 1][0] != ":"):
                        colon = j
                    j += 1
                if colon is not None:
                    for k in range(colon + 1, j):
                        name = toks[k][0]
                        if name in names:
                            self.report(
                                sf, toks[k][1], "determinism-unordered-iter",
                                f"range-for over unordered container "
                                f"'{name}': bucket order is implementation-"
                                "defined and leaks into schedule/output "
                                "order")
            elif t in ("begin", "cbegin") and i >= 2 \
                    and toks[i - 1][0] in (".", "->") \
                    and toks[i - 2][0] in names:
                self.report(sf, line, "determinism-unordered-iter",
                            f"iteration over unordered container "
                            f"'{toks[i - 2][0]}' ({t}()): bucket order is "
                            "implementation-defined")

    # ---- hot-path allocation ---------------------------------------------

    def check_noalloc(self, files_whole, scoped):
        na = self.manifest.get("noalloc", {})
        banned_calls = set(na.get("banned_calls", []))
        banned_types = [_qualified_parts(t) for t in na.get("banned_types", [])]
        for sf in files_whole:
            self._scan_alloc(sf, range(len(sf.tokens)), banned_calls,
                             banned_types)
        for sf, funcs in scoped:
            for span in self._function_spans(sf, funcs):
                self._scan_alloc(sf, span, banned_calls, banned_types)

    def _function_spans(self, sf, funcs):
        toks = sf.tokens
        spans = []
        for i, (t, _) in enumerate(toks):
            if t not in funcs or i + 1 >= len(toks) or toks[i + 1][0] != "(":
                continue
            j = i + 1
            depth = 0
            while j < len(toks):
                if toks[j][0] == "(":
                    depth += 1
                elif toks[j][0] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            # Skip const/noexcept/trailing-return tokens up to the body brace;
            # a ';' first means this was only a declaration.
            k = j + 1
            while k < len(toks) and toks[k][0] not in ("{", ";"):
                k += 1
            if k >= len(toks) or toks[k][0] == ";":
                continue
            depth = 0
            end = k
            while end < len(toks):
                if toks[end][0] == "{":
                    depth += 1
                elif toks[end][0] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                end += 1
            spans.append(range(k, min(end + 1, len(toks))))
        return spans

    def _scan_alloc(self, sf, span, banned_calls, banned_types):
        toks = sf.tokens
        for i in span:
            t, line = toks[i]
            prev = toks[i - 1][0] if i else ""
            nxt = toks[i + 1][0] if i + 1 < len(toks) else ""
            if t == "new" and nxt != "(" and prev != "operator" \
                    and not (prev == "<" and nxt == ">"):  # #include <new>
                self.report(sf, line, "hot-path-alloc",
                            "heap 'new' on the hot path (placement new is "
                            "exempt); use a pool/slab or move this off the "
                            "steady-state path")
            elif t in banned_calls and nxt in ("(", "<") \
                    and prev not in (".", "->"):
                self.report(sf, line, "hot-path-alloc",
                            f"'{t}' allocates; hot-path state must come from "
                            "pre-grown pools")
            else:
                for parts in banned_types:
                    if t == parts[0] and _match_qualified(toks, i, parts):
                        full = "::".join(parts)
                        self.report(sf, line, "hot-path-alloc",
                                    f"'{full}' on the hot path: allocating/"
                                    "node-based type; use the flat/pool "
                                    "alternatives (flat_table, slot_pool, "
                                    "InlineFn, small_vec)")
                        break

    # ---- typed-lane shape -------------------------------------------------

    def check_typed_lane(self, sf: SourceFile):
        tl = self.manifest.get("typed_lane", {})
        event = tl.get("event", "TypedEvent")
        union_name = tl.get("union", "Payload")
        event_size = tl.get("event_size", 48)
        header_size = tl.get("header_size", 16)
        union_member = tl.get("union_member", "u")
        banned_member_types = [_qualified_parts(t)
                               for t in tl.get("banned_member_types", [])]
        toks = sf.tokens
        clean = sf.clean

        members = []  # (name, line, body_span)
        union_line = None
        for i, (t, line) in enumerate(toks):
            if t == "union" and i + 1 < len(toks) \
                    and toks[i + 1][0] == union_name:
                union_line = line
                j = i + 2  # at '{'
                depth = 0
                start = j
                while j < len(toks):
                    tj = toks[j][0]
                    if tj == "{":
                        depth += 1
                    elif tj == "}":
                        depth -= 1
                        if depth == 0:
                            break
                        if depth == 1 and j + 1 < len(toks) and re.fullmatch(
                                r"[A-Za-z_]\w*", toks[j + 1][0]):
                            members.append(
                                (toks[j + 1][0], toks[j + 1][1],
                                 range(start, j)))
                    j += 1
                break
        if union_line is None:
            self.report(sf, 1, "typed-lane-shape",
                        f"no 'union {union_name}' found in typed-event file")
            return

        for name, line, span in members:
            for parts in banned_member_types:
                for k in span:
                    if toks[k][0] == parts[0] \
                            and _match_qualified(toks, k, parts):
                        self.report(
                            sf, toks[k][1], "typed-lane-shape",
                            f"payload '{name}' contains non-trivially-"
                            f"copyable '{'::'.join(parts)}'; typed-lane "
                            "payloads must stay POD")
            has_assert = re.search(
                r"HARMONY_ASSERT_PAYLOAD\s*\(\s*" + re.escape(name)
                + r"\s*\)", clean) or re.search(
                r"static_assert\s*\([^;]*\b" + re.escape(union_name)
                + r"\s*::\s*" + re.escape(name) + r"\b", clean)
            if not has_assert:
                self.report(sf, line, "typed-lane-shape",
                            f"payload member '{name}' has no layout "
                            "static_assert alongside its definition "
                            "(HARMONY_ASSERT_PAYLOAD)")

        if not re.search(r"static_assert\s*\(\s*sizeof\s*\(\s*" + event
                         + r"\s*\)\s*==\s*" + str(event_size), clean):
            self.report(sf, union_line, "typed-lane-shape",
                        f"missing static_assert(sizeof({event}) == "
                        f"{event_size})")
        if not re.search(r"static_assert\s*\(\s*offsetof\s*\(\s*" + event
                         + r"\s*,\s*" + union_member + r"\s*\)\s*==\s*"
                         + str(header_size), clean):
            self.report(sf, union_line, "typed-lane-shape",
                        f"missing static_assert(offsetof({event}, "
                        f"{union_member}) == {header_size}) header-layout "
                        "assert")
        if not re.search(r"is_trivially_copyable[^;]*" + event, clean):
            self.report(sf, union_line, "typed-lane-shape",
                        f"missing is_trivially_copyable assert for {event}")


# ------------------------------------------------------------- clang engine

def try_clang_engine(args):
    """Best-effort libclang AST engine. Returns a cindex Index or None when
    bindings are unavailable (the common case in CI, which pins --engine
    token for reproducibility)."""
    try:
        from clang import cindex  # type: ignore
        return cindex
    except Exception:
        return None


def clang_lint_file(cindex, engine: TokenEngine, sf: SourceFile,
                    compile_args: list[str], manifest: dict, kind: str):
    """AST-level passes for one TU; diagnostics feed the shared reporter so
    suppressions/unused-allow behave identically across engines."""
    from clang.cindex import CursorKind  # type: ignore
    index = cindex.Index.create()
    tu = index.parse(str(sf.path), args=compile_args)
    det = manifest.get("determinism", {})
    banned = set(det.get("banned_calls", [])) | set(
        det.get("banned_identifiers", []))

    def visit(cur):
        if cur.location.file and cur.location.file.name != str(sf.path):
            return
        if kind == "determinism":
            if cur.kind == CursorKind.CALL_EXPR and cur.spelling in banned:
                engine.report(sf, cur.location.line, "determinism-entropy",
                              f"call to '{cur.spelling}' (AST)")
            if cur.kind == CursorKind.CXX_FOR_RANGE_STMT:
                for child in cur.get_children():
                    if "unordered_" in (child.type.spelling or ""):
                        engine.report(sf, cur.location.line,
                                      "determinism-unordered-iter",
                                      f"range-for over "
                                      f"'{child.type.spelling}' (AST)")
                        break
        elif kind == "noalloc":
            if cur.kind == CursorKind.CXX_NEW_EXPR:
                engine.report(sf, cur.location.line, "hot-path-alloc",
                              "heap 'new' on the hot path (AST)")
        for child in cur.get_children():
            visit(child)

    visit(tu.cursor)


# --------------------------------------------------------------------- main

def gather(root: Path, manifest: dict, compile_db: dict[str, list[str]],
           only: set[Path]):
    """Resolve manifest scopes to concrete SourceFile lists."""
    det_paths = manifest.get("determinism", {}).get("paths", [])
    det_files: list[Path] = []
    det_seen: set[Path] = set()
    for p in det_paths:
        base = root / p
        for f in sorted(base.rglob("*.h")) + sorted(base.rglob("*.cpp")):
            if f.resolve() not in det_seen:
                det_seen.add(f.resolve())
                det_files.append(f)
    for src in compile_db:
        sp = Path(src)
        try:
            rel = sp.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
        if any(rel.startswith(p.rstrip("/") + "/") for p in det_paths) \
                and sp.resolve() not in det_seen and sp.exists():
            det_seen.add(sp.resolve())
            det_files.append(sp)

    na = manifest.get("noalloc", {})
    na_files = [root / f for f in na.get("files", [])]
    na_scoped = [(root / e["file"], set(e.get("functions", [])))
                 for e in na.get("scoped", [])]
    tl_file = manifest.get("typed_lane", {}).get("file")

    def keep(p: Path) -> bool:
        return (not only or p.resolve() in only) and p.exists()

    return ([p for p in det_files if keep(p)],
            [p for p in na_files if keep(p)],
            [(p, fns) for p, fns in na_scoped if keep(p)],
            (root / tl_file) if tl_file and keep(root / tl_file) else None)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--manifest", required=True, type=Path)
    ap.add_argument("--root", type=Path, default=Path("."))
    ap.add_argument("--compile-commands", type=Path, default=None,
                    help="compile_commands.json; extends the determinism "
                    "file set with every matching TU and feeds flags to the "
                    "clang engine")
    ap.add_argument("--engine", choices=("auto", "token", "clang"),
                    default="auto")
    ap.add_argument("files", nargs="*", type=Path,
                    help="restrict linting to these files (fixture "
                    "self-tests); default: everything in manifest scope")
    args = ap.parse_args(argv)

    if not args.manifest.exists():
        print(f"harmony_lint: manifest not found: {args.manifest}",
              file=sys.stderr)
        return 2
    manifest = load_manifest(args.manifest)
    root = args.root

    compile_db: dict[str, list[str]] = {}
    if args.compile_commands:
        if not args.compile_commands.exists():
            print("harmony_lint: compile_commands.json not found: "
                  f"{args.compile_commands} (configure with "
                  "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
            return 2
        for entry in json.loads(args.compile_commands.read_text()):
            cmd = entry.get("command")
            argv_list = cmd.split() if cmd else entry.get("arguments", [])
            compile_db[entry["file"]] = [
                a for a in argv_list if a.startswith(("-I", "-D", "-std"))]

    only = {p.resolve() for p in args.files}
    det_files, na_files, na_scoped, tl_file = gather(
        root, manifest, compile_db, only)

    cache: dict[Path, SourceFile] = {}

    def load(p: Path) -> SourceFile:
        key = p.resolve()
        if key not in cache:
            cache[key] = SourceFile(p, root)
        return cache[key]

    engine = TokenEngine(manifest, root)
    cindex = try_clang_engine(args) if args.engine in ("auto", "clang") \
        else None
    if args.engine == "clang" and cindex is None:
        print("harmony_lint: --engine clang requested but python libclang "
              "bindings are unavailable", file=sys.stderr)
        return 2

    det_sfs = [load(p) for p in det_files]
    engine.check_determinism(det_sfs)
    engine.check_noalloc([load(p) for p in na_files],
                         [(load(p), fns) for p, fns in na_scoped])
    if tl_file is not None:
        engine.check_typed_lane(load(tl_file))

    if cindex is not None:
        for sf in det_sfs:
            flags = compile_db.get(str(sf.path), ["-std=c++20"])
            try:
                clang_lint_file(cindex, engine, sf, flags, manifest,
                                "determinism")
            except Exception as e:  # robust fallback: token results stand
                print(f"harmony_lint: clang engine skipped {sf.rel}: {e}",
                      file=sys.stderr)

    # Meta-rules: every allow carries a justification and still matches.
    for sf in cache.values():
        for line in sf.malformed:
            engine.diags.append(Diagnostic(
                sf.path, line, "allow-needs-justification",
                "lint: allow(...) requires a ': <why this is safe>' "
                "justification"))
        for a in sf.allows:
            if not a.used and a.justified:
                engine.diags.append(Diagnostic(
                    sf.path, a.line, "unused-allow",
                    f"allow({', '.join(sorted(a.rules))}) no longer "
                    "suppresses anything; delete it"))

    # Clang AST findings can duplicate token findings at the same site; report
    # each (file, line, rule) once.
    seen = set()
    diags = []
    for d in sorted(engine.diags, key=lambda d: (str(d.path), d.line, d.rule)):
        key = (str(d.path), d.line, d.rule)
        if key not in seen:
            seen.add(key)
            diags.append(d)

    for d in diags:
        print(d.render(root))
    scanned = len(cache)
    mode = "clang+token" if cindex is not None else "token"
    print(f"harmony_lint: {len(diags)} finding(s) in {scanned} file(s) "
          f"scanned (engine={mode})", file=sys.stderr)
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
