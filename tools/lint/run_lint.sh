#!/usr/bin/env bash
# One-command local lint pass, matching the CI lint job exactly:
#
#   tools/lint/run_lint.sh [build-dir]     (default build dir: ./build)
#
#   1. ensure compile_commands.json exists (configures the build dir if not),
#   2. harmony_lint over tools/lint/invariants.toml (token engine, the same
#      engine CI pins so results never depend on host packages),
#   3. the linter's fixture self-test (ctest label `lint` runs the same),
#   4. clang-tidy with the repo's curated .clang-tidy config — skipped with a
#      note when clang-tidy is not installed (CI always runs it).
#
# Exit status is non-zero if any stage finds a violation.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD="${1:-$ROOT/build}"

if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  echo "run_lint: no $BUILD/compile_commands.json; configuring..." >&2
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

echo "== harmony_lint (invariants.toml)" >&2
python3 "$ROOT/tools/lint/harmony_lint.py" \
  --manifest "$ROOT/tools/lint/invariants.toml" \
  --root "$ROOT" \
  --compile-commands "$BUILD/compile_commands.json" \
  --engine token

echo "== linter fixture self-test" >&2
python3 "$ROOT/tools/lint/test_lint.py"

echo "== clang-tidy (curated .clang-tidy, warnings-as-errors core)" >&2
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p "$BUILD" "$ROOT/src/.*\.cpp\$"
elif command -v clang-tidy >/dev/null 2>&1; then
  find "$ROOT/src" -name '*.cpp' -print0 | sort -z |
    xargs -0 clang-tidy -quiet -p "$BUILD"
else
  echo "run_lint: clang-tidy not installed; stage skipped (CI runs it)" >&2
fi

echo "run_lint: OK" >&2
