#!/usr/bin/env python3
"""Self-test for harmony_lint (ctest label: lint).

Runs the linter over the known-bad/known-good fixtures and asserts that
every rule fires exactly where the fixtures' EXPECT-LINT markers say — and
nowhere else — and that justified `lint: allow` suppressions silence it.

Marker syntax, in any fixture comment:
    // EXPECT-LINT: <rule>      diagnostic expected on this line
    // EXPECT-LINT+1: <rule>    diagnostic expected on the next line
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
LINT = HERE / "harmony_lint.py"
FIXTURES = HERE / "fixtures"

DIAG_RE = re.compile(r"^(.+?):(\d+): \[([a-z0-9\-]+)\]")
MARK_RE = re.compile(r"EXPECT-LINT(\+1)?:\s*([a-z0-9\-]+)")


def run_lint(manifest: Path):
    proc = subprocess.run(
        [sys.executable, str(LINT), "--manifest", str(manifest),
         "--root", str(ROOT), "--engine", "token"],
        capture_output=True, text=True)
    diags = set()
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.add((m.group(1), int(m.group(2)), m.group(3)))
    return proc.returncode, diags, proc


def expected_markers(paths):
    exp = set()
    for path in paths:
        rel = path.resolve().relative_to(ROOT.resolve()).as_posix()
        for i, line in enumerate(path.read_text().splitlines(), 1):
            for m in MARK_RE.finditer(line):
                exp.add((rel, i + (1 if m.group(1) else 0), m.group(2)))
    return exp


def check(name: str, ok: bool, detail: str = "") -> bool:
    print(f"[{'PASS' if ok else 'FAIL'}] {name}" + (f": {detail}" if detail
                                                    else ""))
    return ok


def main() -> int:
    ok = True

    # --- pass 1: every rule fires exactly at its markers ------------------
    rc, diags, proc = run_lint(FIXTURES / "invariants_fixture.toml")
    fixture_files = (sorted((FIXTURES / "det").glob("*.cpp"))
                     + sorted((FIXTURES / "hot").glob("*.cpp"))
                     + [FIXTURES / "typed" / "bad_payload.cpp"])
    expected = expected_markers(fixture_files)

    missing = expected - diags
    surplus = diags - expected
    ok &= check("bad fixtures: exit status signals findings", rc == 1,
                f"rc={rc}\n{proc.stderr}" if rc != 1 else "")
    ok &= check("bad fixtures: every expected finding fired", not missing,
                f"missing {sorted(missing)}" if missing else
                f"{len(expected)} findings")
    ok &= check("bad fixtures: no unexpected findings", not surplus,
                f"surplus {sorted(surplus)}" if surplus else "")

    rules_fired = {r for (_, _, r) in diags}
    for rule in ("determinism-entropy", "determinism-unordered-iter",
                 "hot-path-alloc", "typed-lane-shape",
                 "allow-needs-justification", "unused-allow"):
        ok &= check(f"rule exercised: {rule}", rule in rules_fired)

    suppressed_files = {f for (f, _, _) in diags
                        if Path(f).name.startswith("good_")}
    ok &= check("justified suppressions silence every rule",
                not suppressed_files,
                f"findings in good fixtures: {sorted(suppressed_files)}"
                if suppressed_files else "")

    # --- pass 2: fully asserted + suppressed typed-lane file is clean -----
    rc, diags, proc = run_lint(FIXTURES / "invariants_fixture_good.toml")
    ok &= check("good typed-lane fixture: clean exit", rc == 0 and not diags,
                f"rc={rc} diags={sorted(diags)}" if rc or diags else "")

    # --- pass 3: the real tree must be clean under the real manifest ------
    rc, diags, proc = run_lint(ROOT / "tools" / "lint" / "invariants.toml")
    ok &= check("real tree: invariants.toml lints clean",
                rc == 0 and not diags,
                f"rc={rc} diags={sorted(diags)}" if rc or diags else "")

    print()
    print("lint self-test:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
